// Clang thread-safety (capability) annotations + annotated lock primitives.
//
// The PR-8 sharding refactor partitions peers across cores and exchanges
// cross-shard messages at tick barriers; everything that is *not* per-shard
// state must then be provably lock-protected.  This header is the substrate
// for proving it at compile time:
//
//   * the capability macros (GUARDED_BY, REQUIRES, ACQUIRE/RELEASE, ...)
//     wrap Clang's -Wthread-safety attributes and expand to nothing on
//     compilers without the analysis (GCC builds stay clean);
//   * sync::Mutex / sync::MutexLock / sync::CondVar are the repo's only
//     sanctioned lock types.  libstdc++'s std::mutex carries no capability
//     attributes, so the analysis cannot see std::lock_guard acquisitions;
//     these thin wrappers restore visibility with zero overhead.
//
// Like core/units.h, this header is the bottom layer: every module
// (including src/sim/) may include it, and the include-layering lint rule
// treats it as part of the `units` pseudo-module.
//
// Conventions (DESIGN.md §13):
//   * every mutex-protected member is GUARDED_BY its mutex;
//   * public functions that take the lock internally are EXCLUDES(mu_);
//   * private helpers called under the lock are REQUIRES(mu_);
//   * a std::mutex member outside this header is a lint error
//     (unguarded-mutex-member) — use sync::Mutex.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define COOLSTREAM_TSA(x) __attribute__((x))
#else
#define COOLSTREAM_TSA(x)  // not supported by this compiler
#endif

#define CAPABILITY(x) COOLSTREAM_TSA(capability(x))
#define SCOPED_CAPABILITY COOLSTREAM_TSA(scoped_lockable)
#define GUARDED_BY(x) COOLSTREAM_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) COOLSTREAM_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) COOLSTREAM_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) COOLSTREAM_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) COOLSTREAM_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  COOLSTREAM_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) COOLSTREAM_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) COOLSTREAM_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) COOLSTREAM_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) COOLSTREAM_TSA(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) COOLSTREAM_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) COOLSTREAM_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) COOLSTREAM_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) COOLSTREAM_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS COOLSTREAM_TSA(no_thread_safety_analysis)

namespace coolstream::sync {

/// std::mutex with a visible capability.  The analysis tracks acquisition
/// through lock()/unlock()/MutexLock; GUARDED_BY(mu) members then get
/// unlocked accesses rejected at compile time (clang -Wthread-safety).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // The one sanctioned raw std::mutex: it IS the capability this header
  // wraps, so the unguarded-mutex-member rule does not apply to it.
  // census: the sync::Mutex wrapper's own lock (every real mutex is the member instantiating this class)
  std::mutex mu_;  // lint:allow(unguarded-mutex-member)
};

/// RAII lock over a sync::Mutex (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable under sync::Mutex.  wait() REQUIRES the mutex:
/// callers hold it before and after, which is exactly what the capability
/// analysis can verify (the release/reacquire inside is invisible to it and
/// nets out to "still held").
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// Spurious wakeups are possible: always wait in a predicate loop.
  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace coolstream::sync
