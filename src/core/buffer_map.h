// The Buffer Map (BM), §III-C.
//
// "BM is represented by a 2K-tuple, where K is the number of sub-streams.
// The first K components of the tuple records the sequence number of the
// latest received block from each sub-stream.  The second K components of
// the tuple represents the subscription of sub-streams from the partner."
//
// BMs are exchanged periodically between partners; partner selection and
// the adaptation inequalities (§IV-B) evaluate against the latest BM
// received from each partner.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/stream_types.h"

namespace coolstream::core {

/// A 2K-tuple buffer map.
class BufferMap {
 public:
  BufferMap() = default;

  /// Creates an empty BM for `k` sub-streams (latest = -1, no
  /// subscriptions).
  explicit BufferMap(int k);

  int substream_count() const noexcept {
    return static_cast<int>(latest_.size());
  }

  /// Latest received sequence number of sub-stream `i` (-1: none yet).
  SeqNum latest(SubstreamId i) const;
  void set_latest(SubstreamId i, SeqNum seq);

  /// Whether the sender requests (subscribes to) sub-stream `i` from the
  /// partner this BM is sent to.
  bool subscribed(SubstreamId i) const;
  void set_subscribed(SubstreamId i, bool on);

  /// Highest latest() across sub-streams; -1 when nothing received.
  SeqNum max_latest() const noexcept;
  /// Lowest latest() across sub-streams.
  SeqNum min_latest() const noexcept;
  /// max_latest() - min_latest(): the within-node sub-stream spread that
  /// Ineq. (1) bounds by T_s.
  BlockCount spread() const noexcept;

  const std::vector<SeqNum>& latest_all() const noexcept { return latest_; }

  /// Compact wire encoding: "l0,l1,...|s0s1..." where si is '0'/'1'.
  std::string encode() const;
  /// Parses encode() output.  Returns nullopt on malformed input or when
  /// the sub-stream count disagrees between the two halves.
  static std::optional<BufferMap> decode(const std::string& text);

  /// Wire size in bytes (for control-overhead accounting).
  std::size_t wire_size() const { return encode().size(); }

  friend bool operator==(const BufferMap&, const BufferMap&) = default;

 private:
  std::vector<SeqNum> latest_;
  std::vector<std::uint8_t> subscribed_;
};

}  // namespace coolstream::core
