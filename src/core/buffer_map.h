// The Buffer Map (BM), §III-C.
//
// "BM is represented by a 2K-tuple, where K is the number of sub-streams.
// The first K components of the tuple records the sequence number of the
// latest received block from each sub-stream.  The second K components of
// the tuple represents the subscription of sub-streams from the partner."
//
// BMs are exchanged periodically between partners; partner selection and
// the adaptation inequalities (§IV-B) evaluate against the latest BM
// received from each partner.
//
// Representation.  This is the hottest protocol object in the system: every
// peer copies one BM per partner per exchange period and scans one per
// partner per adaptation pass.  The 2K-tuple is therefore word-packed: a
// fixed-width in-place array of latest sequence numbers plus one bit-word
// of subscription flags, in a single trivially-copyable block (no heap, no
// pointer chase).  Lane predicates (the Ineq. 1/2 lag terms of §IV-B and
// the "blocks I need that you have" need set) are exposed as bit masks over
// the K lanes so a partner scan is a handful of word ops instead of a
// branchy per-sub-stream loop.  encode()/decode() remain the debug/golden
// wire format; wire_size() is computed arithmetically without formatting.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

#include "core/stream_types.h"

namespace coolstream::core {

namespace layout {
struct Introspect;  // layout_audit.h: offsetof over audited private members
}  // namespace layout

/// A 2K-tuple buffer map, word-packed.
class BufferMap {
 public:
  /// Lane capacity of the packed representation.  Params::validate()
  /// enforces substream_count <= kMaxSubstreams (the paper uses K=4; the
  /// ablations sweep to 8).
  // A lane capacity, not a protocol sequence/index value.
  static constexpr int kMaxSubstreams = 16;  // lint:allow(raw-protocol-int)

  BufferMap() = default;

  /// Creates an empty BM for `k` sub-streams (latest = -1, no
  /// subscriptions).
  explicit BufferMap(int k);

  int substream_count() const noexcept { return k_; }

  /// Latest received sequence number of sub-stream `i` (-1: none yet).
  SeqNum latest(SubstreamId i) const {
    assert(i.index() < static_cast<std::size_t>(k_));
    return latest_[i.index()];
  }
  void set_latest(SubstreamId i, SeqNum seq) {
    assert(i.index() < static_cast<std::size_t>(k_));
    latest_[i.index()] = seq;
  }

  /// Whether the sender requests (subscribes to) sub-stream `i` from the
  /// partner this BM is sent to.
  bool subscribed(SubstreamId i) const {
    assert(i.index() < static_cast<std::size_t>(k_));
    return (sub_bits_ >> i.index()) & 1u;
  }
  void set_subscribed(SubstreamId i, bool on) {
    assert(i.index() < static_cast<std::size_t>(k_));
    const std::uint32_t bit = 1u << i.index();
    sub_bits_ = on ? (sub_bits_ | bit) : (sub_bits_ & ~bit);
  }

  /// Highest latest() across sub-streams; -1 when nothing received.
  /// Inline so partner scans reduce over the lanes without a call.
  SeqNum max_latest() const noexcept {
    SeqNum best = kNoSeq;
    for (int i = 0; i < k_; ++i) {
      if (latest_[i] > best) best = latest_[i];
    }
    return best;
  }
  /// Lowest latest() across sub-streams.
  SeqNum min_latest() const noexcept {
    if (k_ == 0) return kNoSeq;
    SeqNum worst = latest_[0];
    for (int i = 1; i < k_; ++i) {
      if (latest_[i] < worst) worst = latest_[i];
    }
    return worst;
  }
  /// max_latest() - min_latest(): the within-node sub-stream spread that
  /// Ineq. (1) bounds by T_s.
  BlockCount spread() const noexcept {
    return k_ == 0 ? BlockCount::zero() : max_latest() - min_latest();
  }

  /// The dense latest-seq lanes; lanes [0, substream_count()) are valid.
  const SeqNum* latest_data() const noexcept { return latest_; }
  /// Subscription flags as one bit per lane (lane i -> bit i).
  std::uint32_t subscription_bits() const noexcept { return sub_bits_; }
  /// All-lanes-set mask for this BM's sub-stream count.
  std::uint32_t lane_mask() const noexcept {
    return k_ == 0 ? 0u : (~0u >> (32 - k_));
  }

  // --- lane predicates as bit masks (bit i == sub-stream i) ---------------
  // Branchless per-lane comparisons over the dense in-place lanes, inline
  // so a partner scan is straight-line word ops with no calls and no
  // pointer chase.
  /// "Blocks I need that you have": lanes where this BM (a partner's) is
  /// strictly ahead of `own`.  Both BMs must have the same lane count.
  std::uint32_t need_mask(const BufferMap& own) const noexcept {
    assert(k_ == own.k_);
    std::uint32_t m = 0;
    for (int i = 0; i < k_; ++i) {
      m |= static_cast<std::uint32_t>(latest_[i] > own.latest_[i]) << i;
    }
    return m;
  }
  /// Lanes lagging a reference position: ref - latest >= threshold.  With
  /// ref = max_latest() and threshold = T_s this is the Ineq. (1) spread
  /// term; with ref = partner-wide max and threshold = T_p it is Ineq. (2).
  std::uint32_t lag_mask(SeqNum ref, BlockCount threshold) const noexcept {
    std::uint32_t m = 0;
    for (int i = 0; i < k_; ++i) {
      m |= static_cast<std::uint32_t>(ref - latest_[i] >= threshold) << i;
    }
    return m;
  }
  /// Lanes where this BM leads `behind` by at least `threshold`
  /// (Ineq. (1)'s parent-lag term: parent_bm.gap_mask(own_bm, T_s)).
  std::uint32_t gap_mask(const BufferMap& behind,
                         BlockCount threshold) const noexcept {
    assert(k_ == behind.k_);
    std::uint32_t m = 0;
    for (int i = 0; i < k_; ++i) {
      m |= static_cast<std::uint32_t>(latest_[i] - behind.latest_[i] >=
                                      threshold)
           << i;
    }
    return m;
  }

  /// Compact wire encoding: "l0,l1,...|s0s1..." where si is '0'/'1'.
  /// Debug/golden format only — not on the hot path.
  std::string encode() const;
  /// Parses encode() output.  Returns nullopt on malformed input, when the
  /// sub-stream count disagrees between the two halves, or when it exceeds
  /// kMaxSubstreams.
  static std::optional<BufferMap> decode(const std::string& text);

  /// Wire size in bytes (for control-overhead accounting).  Computed
  /// arithmetically; pinned equal to encode().size() by test.
  std::size_t wire_size() const noexcept;

  friend bool operator==(const BufferMap& a, const BufferMap& b) noexcept {
    if (a.k_ != b.k_ || a.sub_bits_ != b.sub_bits_) return false;
    for (int i = 0; i < a.k_; ++i) {
      if (a.latest_[i] != b.latest_[i]) return false;
    }
    return true;
  }

 private:
  friend struct layout::Introspect;  // member offsets for the layout census

  std::int32_t k_ = 0;
  std::uint32_t sub_bits_ = 0;
  SeqNum latest_[kMaxSubstreams]{};
};

static_assert(sizeof(BufferMap) ==
                  sizeof(std::int64_t) * BufferMap::kMaxSubstreams + 8,
              "BufferMap must stay one dense block (no padding surprises)");

}  // namespace coolstream::core
