// A Coolstreaming node: membership manager + partnership manager + stream
// manager (Fig. 1), driven by the System's tick and message callbacks.
//
// Life cycle (§IV-A, §V-C):
//   kJoining    contacted the boot-strap node, establishing partnerships
//   kBuffering  start-subscription done; sub-streams subscribed, waiting
//               for the media-ready buffer to fill
//   kPlaying    media player running; playout deadlines drive the
//               continuity index
//   kLeft       departed (gracefully or crashed)
//
// Dedicated servers (PeerKind::kServer) share the partnership/serving code
// but are fed directly from the encoder clock and never adapt or play.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/buffer_map.h"
#include "core/cache_buffer.h"
#include "core/mcache.h"
#include "core/params.h"
#include "core/stream_types.h"
#include "core/sync_buffer.h"
#include "logging/reports.h"
#include "net/address.h"
#include "net/connectivity.h"
#include "net/types.h"
#include "sim/rng.h"

namespace coolstream::core {

class System;

/// Server or ordinary viewer.
enum class PeerKind : unsigned char { kServer = 0, kViewer = 1 };

/// Session phase.
enum class PeerPhase : unsigned char {
  kJoining = 0,
  kBuffering = 1,
  kPlaying = 2,
  kLeft = 3,
};

/// Static description of a node (assigned by the workload generator).
struct PeerSpec {
  std::uint64_t user_id = 0;
  PeerKind kind = PeerKind::kViewer;
  net::ConnectionType type = net::ConnectionType::kDirect;
  net::Ipv4Address address;
  units::BitRate upload_capacity = units::BitRate(1'000'000.0);
};

/// What this node knows about one partner.
struct PartnerState {
  net::NodeId id = net::kInvalidNode;
  bool incoming = false;        ///< partner initiated the connection
  Tick established{};
  BufferMap bm;                 ///< latest buffer map received from the partner
  std::optional<Tick> bm_time;  ///< when bm was received (nullopt: never)
};

/// Parent-side record of one sub-stream push connection.
struct OutLink {
  net::NodeId child = net::kInvalidNode;
  SubstreamId substream{};
};

/// Running counters exposed for figures and tests.  Members are ordered
/// 8-byte fields first, then the 32-bit counters (an even count), so the
/// struct packs hole-free (layout_audit.h pins the size).
struct PeerStats {
  std::uint64_t blocks_due = 0;        ///< playout deadlines passed
  std::uint64_t blocks_on_time = 0;    ///< of those, block was present
  units::Bytes bytes_up{};             ///< data-plane upload (lifetime)
  units::Bytes bytes_down{};
  Duration stall_seconds{};            ///< total time spent frozen
  /// Completed sub-stream subscription episodes, split by parent class
  /// (capable = server/direct/UPnP).  Weak-parent subscriptions being
  /// short-lived is the §V-B convergence mechanism.
  Duration capable_subscription_time{};
  Duration weak_subscription_time{};

  std::uint32_t adaptations = 0;       ///< Ineq.(1)/(2)-triggered reselects
  std::uint32_t parent_switches = 0;   ///< actual sub-stream parent changes
  std::uint32_t partnership_attempts = 0;
  std::uint32_t partnership_rejections = 0;
  std::uint32_t window_skips = 0;      ///< fell out of a parent's buffer
  std::uint32_t deadline_skips = 0;    ///< jumped over already-due blocks
  std::uint32_t stalls = 0;            ///< player freezes (rebuffering)
  std::uint32_t resyncs = 0;           ///< playout timeline re-anchors
  std::uint32_t capable_subscriptions_ended = 0;
  std::uint32_t weak_subscriptions_ended = 0;
};

/// The hot, trivially-copyable slice of a peer: every scalar the protocol
/// reads or writes on the tick path, split out of `Peer` so the future
/// struct-of-arrays slab engine can lift it into an ID-indexed slab
/// verbatim.  The contract — trivially copyable, standard layout, no heap,
/// padding-tight, within a bytes/peer budget — is proved at compile time
/// by layout_audit.h and regression-gated by tools/layout/layout_census.
///
/// `Peer` privately inherits this struct, so member names stay valid,
/// unqualified, inside peer.cpp; the cold parts (vectors, buffers, the
/// System back-reference) remain ordinary `Peer` members.  Members are
/// ordered by alignment (8-byte fields, then the phase/flag bytes) so the
/// only padding is the unavoidable tail.
struct PeerProtocolState {
  PeerSpec spec_;
  units::SessionId session_id_{};
  Tick joined_at_;

  // join state
  std::optional<Tick> first_bm_at_;

  // playout state
  GlobalSeq play_start_seq_ = kNoSeq;
  Tick play_start_time_{-1.0};  ///< shifts forward across stalls
  GlobalSeq last_deadline_counted_ = kNoSeq;
  GlobalSeq stalled_on_ = kNoSeq;  ///< block the player waits for

  // timers (absolute next-due times; staggered by a per-peer phase offset)
  Tick next_bm_push_;
  Tick next_gossip_;
  Tick next_adaptation_;
  Tick next_refill_;
  Tick next_report_;
  Tick last_adaptation_{-1.0e18};
  Tick last_resync_{-1.0e18};

  // reporting accumulators (since last status report)
  std::uint64_t interval_due_ = 0;
  std::uint64_t interval_on_time_ = 0;
  units::Bytes interval_bytes_up_{};
  units::Bytes interval_bytes_down_{};

  /// Cached current buffer map + the SyncBuffer version it was built from
  /// (~0: never built).  See Peer::refreshed_bm().
  mutable BufferMap bm_cache_;
  mutable std::uint64_t bm_cache_version_ = ~std::uint64_t{0};

  PeerStats stats_;

  PeerPhase phase_ = PeerPhase::kJoining;
  bool start_decided_ = false;
  bool start_sub_emitted_ = false;
  bool had_incoming_ = false;
  bool had_outgoing_ = false;
};

/// One Coolstreaming node.  Private inheritance of PeerProtocolState keeps
/// the hot scalar state in one audited POD block (see above) while every
/// protocol method keeps referring to the members by their plain names.
class Peer : private PeerProtocolState {
 public:
  Peer(System& system, net::NodeId id, PeerSpec spec,
       units::SessionId session_id, Tick now);

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  // --- identity ----------------------------------------------------------
  net::NodeId id() const noexcept { return id_; }
  const PeerSpec& spec() const noexcept { return spec_; }
  PeerKind kind() const noexcept { return spec_.kind; }
  PeerPhase phase() const noexcept { return phase_; }
  units::SessionId session_id() const noexcept { return session_id_; }
  Tick joined_at() const noexcept { return joined_at_; }
  bool alive() const noexcept { return phase_ != PeerPhase::kLeft; }

  // --- protocol events (invoked by System) --------------------------------
  /// Begins the join process: requests the boot-strap list.
  void start_join();
  /// Boot-strap response: seeds the mCache and attempts partnerships.
  void on_bootstrap_list(std::span<const McacheEntry> list);
  /// A partnership with `peer` is now up.
  void on_partnership_established(net::NodeId peer, bool incoming);
  /// An attempt we initiated failed (unreachable / partner limit).
  void on_partnership_rejected(net::NodeId peer);
  /// Partner left or broke the connection.
  void on_partner_left(net::NodeId peer);
  /// Buffer map received from a partner.
  void on_bm_received(net::NodeId from, const BufferMap& bm);
  /// Gossip payload: entries from a partner's mCache.
  void on_gossip(std::span<const McacheEntry> entries);
  /// Child subscribes to / unsubscribes from sub-stream `j` (parent side).
  void on_subscribe(net::NodeId child, SubstreamId j);
  void on_unsubscribe(net::NodeId child, SubstreamId j);

  /// Periodic driver; `now` is the tick time.  Runs every due timer
  /// (BM push, gossip, adaptation, partner refill, status report) and the
  /// phase logic (media-ready check, playout accounting, server feed).
  void on_tick(Tick now);

  /// Tears the node down: unsubscribes children bookkeeping is handled by
  /// System; this finalizes local state and freezes stats.
  void set_left();

  // --- data plane (FlowModel access) ---------------------------------------
  SyncBuffer& sync() noexcept { return sync_; }
  const SyncBuffer& sync() const noexcept { return sync_; }
  const CacheBuffer& cache() const noexcept { return cache_; }
  std::vector<OutLink>& out_links() noexcept { return out_links_; }
  const std::vector<OutLink>& out_links() const noexcept { return out_links_; }
  SeqNum head(SubstreamId j) const { return sync_.head(j); }
  /// Upload capacity in blocks per second.
  units::BlockRate upload_block_rate() const noexcept;
  double& credit(SubstreamId j) { return credits_[j.index()]; }
  void add_bytes_up(units::Bytes b) noexcept {
    stats_.bytes_up += b;
    interval_bytes_up_ += b;
  }
  void add_bytes_down(units::Bytes b) noexcept {
    stats_.bytes_down += b;
    interval_bytes_down_ += b;
  }
  /// The child's next block on sub-stream `j` has been pushed out of the
  /// parent's cache window, which starts at `window_start`.  Jumps the
  /// sub-stream forward; small gaps are charged as missed at their
  /// deadlines, deep gaps trigger a playout resync.
  void handle_window_gap(SubstreamId j, SeqNum window_start);

  /// Latest sub-stream-`j` sequence number whose playback deadline has
  /// already been counted (with safety margin); blocks at or below it are
  /// dead — a parent pushes only "blocks of a sub-stream in need" (§IV-B),
  /// so the data plane skips over them instead of wasting uplink.
  /// kNoSeq while not playing (everything is still in need).
  SeqNum deadline_floor(SubstreamId j) const noexcept;
  void count_deadline_skip() noexcept { ++stats_.deadline_skips; }

  // --- partnership / subscription state ------------------------------------
  const std::vector<PartnerState>& partners() const noexcept { return partners_; }
  PartnerState* find_partner(net::NodeId id) noexcept;
  const PartnerState* find_partner(net::NodeId id) const noexcept;
  std::size_t partner_count() const noexcept { return partners_.size(); }
  bool partners_full() const noexcept;
  net::NodeId parent_of(SubstreamId j) const { return parents_[j.index()]; }
  bool had_incoming() const noexcept { return had_incoming_; }
  bool had_outgoing() const noexcept { return had_outgoing_; }

  // --- measurement ----------------------------------------------------------
  const PeerStats& stats() const noexcept { return stats_; }
  const Mcache& mcache() const noexcept { return mcache_; }
  /// Current buffer map (the first K components; subscription bits are
  /// per-partner and filled in when pushing to a specific partner).
  /// Copies the cached map; hot paths use refreshed_bm() internally.
  BufferMap current_bm() const;
  /// Global sequence the player starts at; set at start-subscription.
  GlobalSeq play_start_seq() const noexcept { return play_start_seq_; }
  /// Last global block whose deadline has been processed (the playhead);
  /// kNoSeq before playback.  live_edge - playhead is the playback latency.
  GlobalSeq playhead() const noexcept { return last_deadline_counted_; }

 private:
  friend struct InvariantTestAccess;  // seeded-corruption hooks (tests only)

  /// The node's current buffer map (subscription bits zero), rebuilt from
  /// the sync-buffer heads only when SyncBuffer::version() moved — the
  /// dirty-bit cache behind current_bm() and the per-partner BM broadcast.
  const BufferMap& refreshed_bm() const;

  // --- join / subscription logic ---
  void try_establish_partnerships(std::size_t want);
  void decide_start_offset();
  void subscribe_substream(SubstreamId j, net::NodeId parent);
  /// Closes the books on the current subscription of sub-stream j (if
  /// any): records its lifetime under the parent's class.
  void end_subscription(SubstreamId j);
  /// Picks a parent for sub-stream j among current partners, honouring the
  /// two inequalities; returns kInvalidNode when no partner qualifies and
  /// no fallback exists.
  net::NodeId select_parent(SubstreamId j, net::NodeId exclude) const;
  void run_adaptation(Tick now, bool cooldown_exempt);
  void reselect(SubstreamId j);
  void send_status_reports(Tick now);
  void do_playout(Tick now);
  void check_media_ready(Tick now);
  /// Bounded-latency enforcement: when playback drifts beyond
  /// Params::max_playback_lag_seconds behind the live edge, jump the
  /// buffers and the playout timeline forward to T_p behind the freshest
  /// partner (skipped content is abandoned, not charged — §V-D blindness).
  void maybe_resync_forward(Tick now);
  void server_feed(Tick now);
  void do_gossip();
  void drop_worst_partner();
  /// When Params::partner_silence_timeout > 0, drops every partner whose
  /// buffer map has been silent past the timeout (phantom partnerships
  /// left by lost establishment messages, or partners whose crash
  /// notification never arrived).
  void enforce_partner_silence(Tick now);

  // Hot scalar state lives in the PeerProtocolState base; only the cold,
  // heap-owning members (and the identity/back-reference pair) follow.

  // Back-reference to the *owning* System only: a peer never outlives its
  // shard, and partners are addressed by net::NodeId, never by pointer.
  System& sys_;  // lint:allow(cross-peer-ptr)
  net::NodeId id_;

  /// The peer's private random stream, derived from the run's root seed
  /// via Rng::stream(sim::peer_stream_tag(id)).  Every random decision the
  /// protocol makes for this node draws from here, so the decisions are
  /// identical no matter which shard (or how many shards) evaluates it.
  /// Mutable: select_parent() is logically const but breaks ties randomly.
  mutable sim::Rng rng_;

  SyncBuffer sync_;
  CacheBuffer cache_;
  Mcache mcache_;
  std::vector<PartnerState> partners_;
  std::vector<net::NodeId> parents_;   ///< parent per sub-stream
  std::vector<Tick> sub_since_;        ///< subscription start per sub-stream
  std::vector<OutLink> out_links_;     ///< children we push to
  std::vector<double> credits_;        ///< fractional blocks per sub-stream

  /// An in-flight partnership attempt.  Timestamped so that attempts whose
  /// confirm/reject was lost by the network can be aged out (a bare counter
  /// would leak and under-fill the partner set forever); targeted so that
  /// candidate sampling never re-dials a node we are already dialing.
  struct PendingAttempt {
    Tick started;
    net::NodeId to;
  };
  std::vector<PendingAttempt> pending_attempts_;

  bool has_pending_attempt(net::NodeId to) const noexcept;
  void clear_pending_attempt(net::NodeId to);

  /// Blocks skipped forward past a parent's buffer window; they count as
  /// missed when their playback deadline passes.
  struct SkipRange {
    SubstreamId substream;
    SeqNum from;  ///< first skipped sequence number (inclusive)
    SeqNum to;    ///< last skipped sequence number (inclusive)
  };
  std::vector<SkipRange> skips_;

  std::vector<logging::PartnerChange> interval_changes_;
};

}  // namespace coolstream::core
