#include "core/mcache.h"

#include <algorithm>

namespace coolstream::core {

void Mcache::upsert(const McacheEntry& entry, sim::Rng& rng) {
  for (auto& e : entries_) {
    if (e.id == entry.id) {
      e.updated = std::max(e.updated, entry.updated);
      e.first_seen = std::min(e.first_seen, entry.first_seen);
      e.reachable = entry.reachable;
      return;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    return;
  }
  switch (policy_) {
    case McachePolicy::kRandomReplace: {
      entries_[rng.below(entries_.size())] = entry;
      break;
    }
    case McachePolicy::kPreferOld: {
      // Evict the youngest entry, but only if the candidate is older;
      // otherwise drop the candidate (the cache keeps its elders).
      auto youngest = std::max_element(
          entries_.begin(), entries_.end(),
          [](const McacheEntry& a, const McacheEntry& b) {
            return a.first_seen < b.first_seen;
          });
      if (entry.first_seen < youngest->first_seen) *youngest = entry;
      break;
    }
  }
}

void Mcache::remove(net::NodeId id) {
  std::erase_if(entries_, [id](const McacheEntry& e) { return e.id == id; });
}

bool Mcache::contains(net::NodeId id) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const McacheEntry& e) { return e.id == id; });
}

}  // namespace coolstream::core
