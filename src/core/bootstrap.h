// Boot-strap node (§III-B, §IV-A).
//
// "A newly joined node contacts a boot-strap node for a list of peer nodes
// and stores that in its own mCache."  The boot-strap node tracks currently
// active nodes (joins and leaves pass through it in our deployment, as the
// web portal did in the original system) and answers with a uniformly
// random subset.  During a flash crowd most active nodes are new arrivals,
// so the returned lists are dominated by freshly joined peers — the
// mCache-pollution effect of §V-C needs no special casing.
#pragma once

#include <vector>

#include "core/stream_types.h"
#include "net/types.h"
#include "sim/rng.h"

namespace coolstream::core {

/// Registry of active nodes; answers join-time list requests.
class BootstrapServer {
 public:
  /// Registers a node as active.  Idempotent.
  void add(net::NodeId id, Tick joined_at);

  /// Unregisters a node (leave/crash detected by the portal).
  void remove(net::NodeId id);

  /// Uniformly random subset of up to `k` active nodes, excluding
  /// `requester`.
  std::vector<net::NodeId> random_list(std::size_t k, net::NodeId requester,
                                       sim::Rng& rng) const;

  /// random_list into caller-owned buffers (cleared first): identical RNG
  /// draws, allocation-free once capacities are warm.
  void random_list_into(std::size_t k, net::NodeId requester, sim::Rng& rng,
                        std::vector<std::size_t>& idx_scratch,
                        std::vector<net::NodeId>& out) const;

  std::size_t active_count() const noexcept { return order_.size(); }
  bool contains(net::NodeId id) const noexcept;

  /// Join time of an active node; Tick(-1) when not active.
  Tick joined_at(net::NodeId id) const noexcept;

 private:
  struct ActiveNode {
    net::NodeId id;
    Tick joined_at;
  };
  // Dense vector + index map for O(1) add/remove and O(k) sampling.
  std::vector<ActiveNode> order_;
  std::vector<std::size_t> index_;  // NodeId -> position+1 (0 = absent)
};

}  // namespace coolstream::core
