// Synchronization buffer (Fig. 2a/2b).
//
// "A received block is firstly put into the synchronization buffer for each
// corresponding sub-stream.  They will be combined into one stream when
// blocks with continuous sequence numbers have been received from each
// sub-stream."
//
// Blocks may arrive out of order within a sub-stream (e.g. right after a
// parent switch); the buffer tracks, per sub-stream, the contiguous head
// plus a bounded set of blocks received ahead of it, and exposes the
// combined prefix of the interleaved global order.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "core/stream_types.h"

namespace coolstream::core {

/// Per-node synchronization buffer for K sub-streams.
class SyncBuffer {
 public:
  explicit SyncBuffer(int k);

  int substream_count() const noexcept {
    return static_cast<int>(heads_.size());
  }

  /// Inserts block `seq` of sub-stream `i`.  Returns true when the block
  /// was new (false: duplicate or already below the contiguous head).
  bool insert(SubstreamId i, SeqNum seq);

  /// Latest *contiguous* sequence number of sub-stream `i` (-1: none).
  /// This is what the node advertises in its Buffer Map.
  SeqNum head(SubstreamId i) const;

  /// Jump-starts a sub-stream at `seq - 1`, declaring every earlier block
  /// irrelevant.  Used at join time: the node starts pulling from the
  /// initial sequence number chosen per §IV-A and never looks back.
  void start_at(SubstreamId i, SeqNum seq);

  /// Declares the global prefix [0, g] irrelevant (already played or
  /// skipped at join).  Call once after start_at() initialized every
  /// sub-stream, with g = first wanted global block - 1; keeps combined()
  /// incremental instead of scanning from stream start.
  void set_combined_floor(GlobalSeq g) noexcept;

  /// Number of blocks of sub-stream `i` received ahead of the contiguous
  /// head (out-of-order backlog).
  std::size_t pending(SubstreamId i) const;

  /// Last global block such that the whole interleaved prefix is
  /// combinable (Fig. 2b); -1 when nothing combinable yet.  Cached;
  /// O(new blocks) amortized.
  GlobalSeq combined() const noexcept { return combined_; }

  /// max head - min head across sub-streams: the Ineq.-(1) spread.
  BlockCount spread() const noexcept;

  /// All heads, indexable by sub-stream.
  const std::vector<SeqNum>& heads() const noexcept { return heads_; }

  /// Total blocks accepted by insert().
  std::uint64_t blocks_received() const noexcept { return received_; }

  /// Monotonic mutation counter: bumps whenever the heads can have moved
  /// (accepted insert or start_at).  A cached BufferMap built from these
  /// heads is valid exactly while the version is unchanged — the dirty
  /// bit for Peer's current-BM cache.
  std::uint64_t version() const noexcept { return version_; }

 private:
  friend struct InvariantTestAccess;  // seeded-corruption hooks (tests only)

  void recompute_combined() noexcept;

  std::vector<SeqNum> heads_;
  /// Out-of-order blocks per sub-stream (strictly above the head).
  std::vector<std::set<SeqNum>> ahead_;
  GlobalSeq combined_ = kNoSeq;
  std::uint64_t received_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace coolstream::core
