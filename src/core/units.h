// Strong domain types for the protocol's dimensioned quantities.
//
// The paper's dynamics (Ineq. 1-2 buffer-lag triggers, Eq. 3 catch-up,
// Eq. 4 abandon, Eq. 5-6 competition) mix simulated time, block sequence
// numbers, sub-stream indices and bandwidth.  Representing all of them as
// bare `double` / `std::int64_t` lets a ticks/blocks or bits/bytes mix-up
// compile silently and surface only as a wrong Figure-3..10 curve.  This
// header makes such states unrepresentable: each quantity is a distinct
// type offering exactly the dimensionally meaningful operators
//
//   Tick      - Tick      -> Duration        (time points vs. spans)
//   Tick      +- Duration -> Tick
//   BlockIndex - BlockIndex -> BlockCount    (sequence points vs. spans)
//   BlockIndex +- BlockCount -> BlockIndex
//   BitRate   * Duration  -> Bytes           (and Bytes / Duration -> BitRate)
//   BlockRate * Duration  -> double blocks   (fluid data plane; fractional)
//
// and *no* cross-type comparison or implicit construction.  `value()` is
// the single escape hatch; outside whitelisted boundary files (config
// parsing, CSV/log emission, the slab event engine's bucket math) every
// use needs a value-escape lint:allow annotation — enforced by
// tools/lint/coolstream_lint.cpp.
//
// Zero overhead: every type is a trivially copyable standard-layout wrapper
// the size of its representation (static_assert-verified below), all
// operators are constexpr, so codegen is identical to raw integers and
// doubles.  This is the ns3::Time discipline scaled down to exactly the
// dimensions this reproduction needs.
//
// This header is layer-0 vocabulary: it includes nothing from the project
// and may be included from any layer (sim, net, core, model, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <type_traits>

namespace coolstream::units {

// ---------------------------------------------------------------------------
// Time: Duration (span, seconds) and Tick (absolute simulation time point)
// ---------------------------------------------------------------------------

/// A span of simulated time, in seconds.
class Duration {
 public:
  Duration() = default;
  explicit constexpr Duration(double seconds) noexcept : v_(seconds) {}
  static constexpr Duration seconds(double s) noexcept { return Duration(s); }
  static constexpr Duration minutes(double m) noexcept {
    return Duration(m * 60.0);
  }
  static constexpr Duration hours(double h) noexcept {
    return Duration(h * 3600.0);
  }
  static constexpr Duration zero() noexcept { return Duration(0.0); }
  static constexpr Duration infinity() noexcept {
    return Duration(std::numeric_limits<double>::infinity());
  }
  /// Escape hatch: the raw number of seconds.
  constexpr double value() const noexcept { return v_; }

  friend constexpr bool operator==(Duration, Duration) noexcept = default;
  friend constexpr auto operator<=>(Duration, Duration) noexcept = default;

  constexpr Duration operator-() const noexcept { return Duration(-v_); }
  constexpr Duration& operator+=(Duration d) noexcept {
    v_ += d.v_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) noexcept {
    v_ -= d.v_;
    return *this;
  }
  constexpr Duration& operator*=(double k) noexcept {
    v_ *= k;
    return *this;
  }
  constexpr Duration& operator/=(double k) noexcept {
    v_ /= k;
    return *this;
  }

  friend constexpr Duration operator+(Duration a, Duration b) noexcept {
    return Duration(a.v_ + b.v_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept {
    return Duration(a.v_ - b.v_);
  }
  friend constexpr Duration operator*(Duration d, double k) noexcept {
    return Duration(d.v_ * k);
  }
  friend constexpr Duration operator*(double k, Duration d) noexcept {
    return Duration(k * d.v_);
  }
  friend constexpr Duration operator/(Duration d, double k) noexcept {
    return Duration(d.v_ / k);
  }
  /// Ratio of two spans is dimensionless.
  friend constexpr double operator/(Duration a, Duration b) noexcept {
    return a.v_ / b.v_;
  }
  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.v_;
  }

 private:
  double v_ = 0.0;
};

/// An absolute point on the simulation clock, in seconds since time zero.
class Tick {
 public:
  Tick() = default;
  explicit constexpr Tick(double seconds) noexcept : v_(seconds) {}
  static constexpr Tick zero() noexcept { return Tick(0.0); }
  static constexpr Tick max() noexcept {
    return Tick(std::numeric_limits<double>::infinity());
  }
  /// Escape hatch: seconds since simulation start.
  constexpr double value() const noexcept { return v_; }

  friend constexpr bool operator==(Tick, Tick) noexcept = default;
  friend constexpr auto operator<=>(Tick, Tick) noexcept = default;

  constexpr Tick& operator+=(Duration d) noexcept {
    v_ += d.value();
    return *this;
  }
  constexpr Tick& operator-=(Duration d) noexcept {
    v_ -= d.value();
    return *this;
  }
  friend constexpr Tick operator+(Tick t, Duration d) noexcept {
    return Tick(t.v_ + d.value());
  }
  friend constexpr Tick operator+(Duration d, Tick t) noexcept {
    return Tick(t.v_ + d.value());
  }
  friend constexpr Tick operator-(Tick t, Duration d) noexcept {
    return Tick(t.v_ - d.value());
  }
  /// Distance between two time points.
  friend constexpr Duration operator-(Tick a, Tick b) noexcept {
    return Duration(a.v_ - b.v_);
  }
  friend std::ostream& operator<<(std::ostream& os, Tick t) {
    return os << t.v_;
  }

 private:
  double v_ = 0.0;
};

// ---------------------------------------------------------------------------
// Block sequence space: BlockCount (span) and BlockIndex (point)
// ---------------------------------------------------------------------------

/// A number of blocks (a span in sequence space).
class BlockCount {
 public:
  BlockCount() = default;
  explicit constexpr BlockCount(std::int64_t n) noexcept : v_(n) {}
  static constexpr BlockCount zero() noexcept { return BlockCount(0); }
  /// Escape hatch: the raw block count.
  constexpr std::int64_t value() const noexcept { return v_; }

  friend constexpr bool operator==(BlockCount, BlockCount) noexcept = default;
  friend constexpr auto operator<=>(BlockCount, BlockCount) noexcept = default;

  constexpr BlockCount operator-() const noexcept { return BlockCount(-v_); }
  constexpr BlockCount& operator+=(BlockCount c) noexcept {
    v_ += c.v_;
    return *this;
  }
  constexpr BlockCount& operator-=(BlockCount c) noexcept {
    v_ -= c.v_;
    return *this;
  }
  friend constexpr BlockCount operator+(BlockCount a, BlockCount b) noexcept {
    return BlockCount(a.v_ + b.v_);
  }
  friend constexpr BlockCount operator-(BlockCount a, BlockCount b) noexcept {
    return BlockCount(a.v_ - b.v_);
  }
  friend constexpr BlockCount operator*(BlockCount c, std::int64_t k) noexcept {
    return BlockCount(c.v_ * k);
  }
  friend constexpr BlockCount operator*(std::int64_t k, BlockCount c) noexcept {
    return BlockCount(k * c.v_);
  }
  friend constexpr BlockCount operator/(BlockCount c, std::int64_t k) noexcept {
    return BlockCount(c.v_ / k);
  }
  friend std::ostream& operator<<(std::ostream& os, BlockCount c) {
    return os << c.v_;
  }

 private:
  std::int64_t v_ = 0;
};

/// A position in a block sequence (per-sub-stream or interleaved global).
/// -1 is the protocol's "nothing yet" sentinel.
class BlockIndex {
 public:
  BlockIndex() = default;
  explicit constexpr BlockIndex(std::int64_t seq) noexcept : v_(seq) {}
  /// The protocol-wide "nothing received / not playing" sentinel.
  static constexpr BlockIndex none() noexcept { return BlockIndex(-1); }
  /// Escape hatch: the raw sequence number.
  constexpr std::int64_t value() const noexcept { return v_; }

  friend constexpr bool operator==(BlockIndex, BlockIndex) noexcept = default;
  friend constexpr auto operator<=>(BlockIndex, BlockIndex) noexcept = default;

  constexpr BlockIndex& operator+=(BlockCount c) noexcept {
    v_ += c.value();
    return *this;
  }
  constexpr BlockIndex& operator-=(BlockCount c) noexcept {
    v_ -= c.value();
    return *this;
  }
  constexpr BlockIndex& operator++() noexcept {
    ++v_;
    return *this;
  }
  constexpr BlockIndex& operator--() noexcept {
    --v_;
    return *this;
  }
  friend constexpr BlockIndex operator+(BlockIndex i, BlockCount c) noexcept {
    return BlockIndex(i.v_ + c.value());
  }
  friend constexpr BlockIndex operator-(BlockIndex i, BlockCount c) noexcept {
    return BlockIndex(i.v_ - c.value());
  }
  /// Distance between two sequence positions.
  friend constexpr BlockCount operator-(BlockIndex a, BlockIndex b) noexcept {
    return BlockCount(a.v_ - b.v_);
  }
  friend std::ostream& operator<<(std::ostream& os, BlockIndex i) {
    return os << i.v_;
  }

 private:
  std::int64_t v_ = 0;
};

// ---------------------------------------------------------------------------
// Identifiers: SubStreamId, PeerId, SessionId (no arithmetic at all)
// ---------------------------------------------------------------------------

/// Index of one of the K sub-streams, in [0, K).
class SubStreamId {
 public:
  SubStreamId() = default;
  explicit constexpr SubStreamId(int i) noexcept : v_(i) {}
  /// Escape hatch: the raw index.
  constexpr int value() const noexcept { return v_; }
  /// Container subscript for per-sub-stream arrays (dimensionally an
  /// identifier -> slot conversion, so not an escape hatch).
  constexpr std::size_t index() const noexcept {
    return static_cast<std::size_t>(v_);
  }

  friend constexpr bool operator==(SubStreamId, SubStreamId) noexcept =
      default;
  friend constexpr auto operator<=>(SubStreamId, SubStreamId) noexcept =
      default;
  /// Round-robin successor, used only by range iteration helpers.
  constexpr SubStreamId& operator++() noexcept {
    ++v_;
    return *this;
  }
  friend std::ostream& operator<<(std::ostream& os, SubStreamId i) {
    return os << i.v_;
  }

 private:
  int v_ = 0;
};

/// Dense node identifier (id 0 is the source by convention).
class PeerId {
 public:
  PeerId() = default;
  explicit constexpr PeerId(std::uint32_t id) noexcept : v_(id) {}
  static constexpr PeerId invalid() noexcept {
    return PeerId(std::numeric_limits<std::uint32_t>::max());
  }
  /// Escape hatch: the raw id.
  constexpr std::uint32_t value() const noexcept { return v_; }
  /// Container subscript for per-node arrays.
  constexpr std::size_t index() const noexcept { return v_; }

  friend constexpr bool operator==(PeerId, PeerId) noexcept = default;
  friend constexpr auto operator<=>(PeerId, PeerId) noexcept = default;
  friend std::ostream& operator<<(std::ostream& os, PeerId p) {
    return os << p.v_;
  }

 private:
  std::uint32_t v_ = 0;
};

/// Unique identifier of one viewing session (one join).
class SessionId {
 public:
  SessionId() = default;
  explicit constexpr SessionId(std::uint64_t id) noexcept : v_(id) {}
  static constexpr SessionId none() noexcept { return SessionId(0); }
  /// Escape hatch: the raw id.
  constexpr std::uint64_t value() const noexcept { return v_; }

  friend constexpr bool operator==(SessionId, SessionId) noexcept = default;
  friend constexpr auto operator<=>(SessionId, SessionId) noexcept = default;
  friend std::ostream& operator<<(std::ostream& os, SessionId s) {
    return os << s.v_;
  }

 private:
  std::uint64_t v_ = 0;
};

// ---------------------------------------------------------------------------
// Data volume and rates: Bytes, BitRate, BlockRate
// ---------------------------------------------------------------------------

/// A volume of payload data.
class Bytes {
 public:
  Bytes() = default;
  explicit constexpr Bytes(std::uint64_t n) noexcept : v_(n) {}
  static constexpr Bytes zero() noexcept { return Bytes(0); }
  /// Escape hatch: the raw byte count.
  constexpr std::uint64_t value() const noexcept { return v_; }

  friend constexpr bool operator==(Bytes, Bytes) noexcept = default;
  friend constexpr auto operator<=>(Bytes, Bytes) noexcept = default;

  constexpr Bytes& operator+=(Bytes b) noexcept {
    v_ += b.v_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes b) noexcept {
    v_ -= b.v_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) noexcept {
    return Bytes(a.v_ + b.v_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) noexcept {
    return Bytes(a.v_ - b.v_);
  }
  friend constexpr Bytes operator*(Bytes b, std::uint64_t k) noexcept {
    return Bytes(b.v_ * k);
  }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes b) noexcept {
    return Bytes(k * b.v_);
  }
  friend std::ostream& operator<<(std::ostream& os, Bytes b) {
    return os << b.v_;
  }

 private:
  std::uint64_t v_ = 0;
};

/// A data rate in bits per second (the paper's R, capacities, ...).
class BitRate {
 public:
  BitRate() = default;
  explicit constexpr BitRate(double bps) noexcept : v_(bps) {}
  static constexpr BitRate zero() noexcept { return BitRate(0.0); }
  /// Escape hatch: the raw bits/second.
  constexpr double value() const noexcept { return v_; }

  friend constexpr bool operator==(BitRate, BitRate) noexcept = default;
  friend constexpr auto operator<=>(BitRate, BitRate) noexcept = default;

  friend constexpr BitRate operator+(BitRate a, BitRate b) noexcept {
    return BitRate(a.v_ + b.v_);
  }
  friend constexpr BitRate operator-(BitRate a, BitRate b) noexcept {
    return BitRate(a.v_ - b.v_);
  }
  friend constexpr BitRate operator*(BitRate r, double k) noexcept {
    return BitRate(r.v_ * k);
  }
  friend constexpr BitRate operator*(double k, BitRate r) noexcept {
    return BitRate(k * r.v_);
  }
  friend constexpr BitRate operator/(BitRate r, double k) noexcept {
    return BitRate(r.v_ / k);
  }
  /// Ratio of two rates is dimensionless.
  friend constexpr double operator/(BitRate a, BitRate b) noexcept {
    return a.v_ / b.v_;
  }
  /// Volume transferred at this rate over a span (bits -> bytes, floor).
  friend constexpr Bytes operator*(BitRate r, Duration d) noexcept {
    return Bytes(static_cast<std::uint64_t>(r.v_ * d.value() / 8.0));
  }
  friend constexpr Bytes operator*(Duration d, BitRate r) noexcept {
    return r * d;
  }
  friend std::ostream& operator<<(std::ostream& os, BitRate r) {
    return os << r.v_;
  }

 private:
  double v_ = 0.0;
};

/// Average rate over a span (volume / time).
constexpr BitRate rate_of(Bytes b, Duration d) noexcept {
  return BitRate(static_cast<double>(b.value()) * 8.0 / d.value());
}

/// A block rate in blocks per second (the fluid data plane's currency:
/// R expressed in blocks/s, the per-sub-stream rate R/K, Eq.-5 shares).
class BlockRate {
 public:
  BlockRate() = default;
  explicit constexpr BlockRate(double blocks_per_sec) noexcept
      : v_(blocks_per_sec) {}
  static constexpr BlockRate zero() noexcept { return BlockRate(0.0); }
  /// Escape hatch: the raw blocks/second.
  constexpr double value() const noexcept { return v_; }

  friend constexpr bool operator==(BlockRate, BlockRate) noexcept = default;
  friend constexpr auto operator<=>(BlockRate, BlockRate) noexcept = default;

  friend constexpr BlockRate operator+(BlockRate a, BlockRate b) noexcept {
    return BlockRate(a.v_ + b.v_);
  }
  friend constexpr BlockRate operator-(BlockRate a, BlockRate b) noexcept {
    return BlockRate(a.v_ - b.v_);
  }
  friend constexpr BlockRate operator*(BlockRate r, double k) noexcept {
    return BlockRate(r.v_ * k);
  }
  friend constexpr BlockRate operator*(double k, BlockRate r) noexcept {
    return BlockRate(k * r.v_);
  }
  friend constexpr BlockRate operator/(BlockRate r, double k) noexcept {
    return BlockRate(r.v_ / k);
  }
  /// Ratio of two rates is dimensionless.
  friend constexpr double operator/(BlockRate a, BlockRate b) noexcept {
    return a.v_ / b.v_;
  }
  /// Blocks produced over a span.  Fractional: the fluid model accumulates
  /// credit and materializes whole blocks (see core::System).
  friend constexpr double operator*(BlockRate r, Duration d) noexcept {
    return r.v_ * d.value();
  }
  friend constexpr double operator*(Duration d, BlockRate r) noexcept {
    return d.value() * r.v_;
  }
  friend std::ostream& operator<<(std::ostream& os, BlockRate r) {
    return os << r.v_;
  }

 private:
  double v_ = 0.0;
};

/// Average block rate over a span (span of sequence space / span of time).
constexpr BlockRate rate_of(BlockCount c, Duration d) noexcept {
  return BlockRate(static_cast<double>(c.value()) / d.value());
}

// ---------------------------------------------------------------------------
// Zero-overhead guarantees
// ---------------------------------------------------------------------------

#define COOLSTREAM_ASSERT_UNIT(T, Rep)                                       \
  static_assert(std::is_trivially_copyable_v<T>, #T " must be trivial");     \
  static_assert(std::is_standard_layout_v<T>, #T " must be POD-layout");     \
  static_assert(sizeof(T) == sizeof(Rep), #T " must cost nothing");          \
  static_assert(std::is_trivially_destructible_v<T>, #T " must be trivial")

COOLSTREAM_ASSERT_UNIT(Duration, double);
COOLSTREAM_ASSERT_UNIT(Tick, double);
COOLSTREAM_ASSERT_UNIT(BlockCount, std::int64_t);
COOLSTREAM_ASSERT_UNIT(BlockIndex, std::int64_t);
COOLSTREAM_ASSERT_UNIT(SubStreamId, int);
COOLSTREAM_ASSERT_UNIT(PeerId, std::uint32_t);
COOLSTREAM_ASSERT_UNIT(SessionId, std::uint64_t);
COOLSTREAM_ASSERT_UNIT(Bytes, std::uint64_t);
COOLSTREAM_ASSERT_UNIT(BitRate, double);
COOLSTREAM_ASSERT_UNIT(BlockRate, double);

#undef COOLSTREAM_ASSERT_UNIT

}  // namespace coolstream::units

/// PeerId and SessionId key hash containers (partner sets, session tables).
template <>
struct std::hash<coolstream::units::PeerId> {
  std::size_t operator()(coolstream::units::PeerId p) const noexcept {
    return std::hash<std::uint32_t>{}(p.value());
  }
};

template <>
struct std::hash<coolstream::units::SessionId> {
  std::size_t operator()(coolstream::units::SessionId s) const noexcept {
    return std::hash<std::uint64_t>{}(s.value());
  }
};
