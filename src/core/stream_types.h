// Sequence-number arithmetic for sub-streams and the interleaved global
// playback order (§III-C), on top of the strong domain types of
// core/units.h.
//
// Global block g (g = 0,1,2,...) belongs to sub-stream g mod K and carries
// sub-stream sequence number g / K.  Conversely sub-stream i's block n is
// global block n*K + i.  The "combination process" of the synchronization
// buffer (Fig. 2b) produces the longest prefix of the global order present
// in the per-sub-stream buffers.
//
// This header (like core/units.h) is layer-0 vocabulary shared by every
// layer, and is one of the whitelisted boundary files allowed to use the
// raw-value escape hatch: the mod/div interleaving arithmetic below is
// exactly the place where sequence numbers are legitimately numbers.
#pragma once

#include <cstdint>

#include "core/units.h"

namespace coolstream::core {

/// Absolute simulation time and spans of it, re-exported so protocol code
/// can speak about timers without pulling in the event engine.  sim::Time
/// aliases the same units::Tick, so the two layers interoperate directly.
using Tick = units::Tick;
using Duration = units::Duration;

/// Sub-stream index in [0, K).
using SubstreamId = units::SubStreamId;

/// Per-sub-stream block sequence number.  SeqNum::none() (-1) means
/// "nothing received yet".
using SeqNum = units::BlockIndex;

/// Position in the interleaved global playback order.
using GlobalSeq = units::BlockIndex;

/// Span in either sequence space.
using BlockCount = units::BlockCount;

/// The "nothing yet" sentinel shared by both sequence spaces.
inline constexpr SeqNum kNoSeq = SeqNum::none();

/// Iterable range over the K sub-stream ids: `for (SubstreamId j :
/// substreams(k))`.  Keeps protocol loops free of raw-int index juggling.
class SubstreamRange {
 public:
  class iterator {
   public:
    explicit constexpr iterator(int i) noexcept : id_(i) {}
    constexpr SubstreamId operator*() const noexcept { return id_; }
    constexpr iterator& operator++() noexcept {
      ++id_;
      return *this;
    }
    friend constexpr bool operator==(iterator, iterator) noexcept = default;

   private:
    SubstreamId id_;
  };

  explicit constexpr SubstreamRange(int k) noexcept : k_(k) {}
  constexpr iterator begin() const noexcept { return iterator(0); }
  constexpr iterator end() const noexcept { return iterator(k_); }

 private:
  int k_;
};

constexpr SubstreamRange substreams(int k) noexcept {
  return SubstreamRange(k);
}

/// Sub-stream that carries global block `g` in a K-sub-stream split.
constexpr SubstreamId substream_of(GlobalSeq g, int k) noexcept {
  return SubstreamId(static_cast<int>(g.value() % k));
}

/// Sub-stream sequence number of global block `g`.
constexpr SeqNum substream_seq_of(GlobalSeq g, int k) noexcept {
  return SeqNum(g.value() / k);
}

/// Global position of sub-stream `i`'s block `n`.
constexpr GlobalSeq global_of(SubstreamId i, SeqNum n, int k) noexcept {
  return GlobalSeq(n.value() * k + i.value());
}

/// Latest sequence number of sub-stream `i` whose global position is at or
/// below `g`; none when sub-stream i has no block at or below g.  (The
/// playout uses this to derive per-sub-stream deadline floors from the
/// global playhead.)
constexpr SeqNum last_seq_at_or_below(GlobalSeq g, SubstreamId i,
                                      int k) noexcept {
  if (g.value() < i.value()) return SeqNum::none();
  return SeqNum((g.value() - i.value()) / k);
}

/// Given the latest *contiguous* sequence number per sub-stream
/// (heads[i] = none if nothing), the last global block such that the whole
/// global prefix [0, result] is available.  Returns none when even global
/// block 0 is missing.  This is the Fig.-2b combination rule.
///
/// heads must point at k values.
/// `from` is a lower-bound hint (a previously computed prefix); the scan
/// resumes there, making repeated incremental calls O(new blocks) total.
constexpr GlobalSeq combined_prefix(const SeqNum* heads, int k,
                                    GlobalSeq from = GlobalSeq::none()) noexcept {
  GlobalSeq best = from;
  for (;;) {
    GlobalSeq g = best;
    ++g;
    const SubstreamId i = substream_of(g, k);
    const SeqNum need = substream_seq_of(g, k);
    if (heads[i.index()] >= need) {
      best = g;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace coolstream::core
