// Sequence-number arithmetic for sub-streams and the interleaved global
// playback order (§III-C).
//
// Global block g (g = 0,1,2,...) belongs to sub-stream g mod K and carries
// sub-stream sequence number g / K.  Conversely sub-stream i's block n is
// global block n*K + i.  The "combination process" of the synchronization
// buffer (Fig. 2b) produces the longest prefix of the global order present
// in the per-sub-stream buffers.
#pragma once

#include <cstdint>

namespace coolstream::core {

/// Sub-stream index in [0, K).
using SubstreamId = int;

/// Per-sub-stream block sequence number.  -1 means "nothing received yet".
using SeqNum = std::int64_t;

/// Position in the interleaved global playback order.
using GlobalSeq = std::int64_t;

/// Sub-stream that carries global block `g` in a K-sub-stream split.
constexpr SubstreamId substream_of(GlobalSeq g, int k) noexcept {
  return static_cast<SubstreamId>(g % k);
}

/// Sub-stream sequence number of global block `g`.
constexpr SeqNum substream_seq_of(GlobalSeq g, int k) noexcept {
  return g / k;
}

/// Global position of sub-stream `i`'s block `n`.
constexpr GlobalSeq global_of(SubstreamId i, SeqNum n, int k) noexcept {
  return n * k + i;
}

/// Given the latest *contiguous* sequence number per sub-stream
/// (heads[i] = -1 if none), the last global block such that the whole
/// global prefix [0, result] is available.  Returns -1 when even global
/// block 0 is missing.  This is the Fig.-2b combination rule.
///
/// heads must point at k values.
/// `from` is a lower-bound hint (a previously computed prefix); the scan
/// resumes there, making repeated incremental calls O(new blocks) total.
constexpr GlobalSeq combined_prefix(const SeqNum* heads, int k,
                                    GlobalSeq from = -1) noexcept {
  GlobalSeq best = from;
  for (;;) {
    const GlobalSeq g = best + 1;
    const SubstreamId i = substream_of(g, k);
    const SeqNum need = substream_seq_of(g, k);
    if (heads[i] >= need) {
      best = g;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace coolstream::core
