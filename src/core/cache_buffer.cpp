#include "core/cache_buffer.h"

#include <algorithm>
#include <cassert>

namespace coolstream::core {

CacheBuffer::CacheBuffer(BlockCount window_blocks) : window_(window_blocks) {
  assert(window_blocks >= BlockCount(1));
}

SeqNum CacheBuffer::oldest(SeqNum head) const noexcept {
  return std::max(SeqNum(0), head - window_ + BlockCount(1));
}

bool CacheBuffer::available(SeqNum head, SeqNum seq) const noexcept {
  return seq >= SeqNum(0) && seq <= head && seq >= oldest(head);
}

SeqNum CacheBuffer::clamp_start(SeqNum head, SeqNum requested) const noexcept {
  return std::clamp(requested, oldest(head), head + BlockCount(1));
}

}  // namespace coolstream::core
