#include "analysis/session_analysis.h"

#include <algorithm>
#include <unordered_map>

namespace coolstream::analysis {

TypeDistribution observed_type_distribution(const logging::SessionLog& log) {
  TypeDistribution dist;
  // Classify each *user* once, from the union of its sessions' partner
  // direction flags (a user that ever accepted an inbound partnership is
  // reachable).  Only users with at least one closed session classify.
  for (const auto& user : log.users) {
    bool any_closed = false;
    bool private_addr = false;
    bool had_in = false;
    bool had_out = false;
    for (std::size_t idx : user.session_indices) {
      const auto& s = log.sessions[idx];
      if (!s.leave_time) continue;
      any_closed = true;
      private_addr = private_addr || s.private_address;
      had_in = had_in || s.had_incoming;
      had_out = had_out || s.had_outgoing;
    }
    if (!any_closed) continue;
    const auto type = net::classify_observed(private_addr, had_in, had_out);
    ++dist.counts[static_cast<std::size_t>(type)];
    ++dist.total;
  }
  return dist;
}

ContributionBreakdown upload_contributions(const logging::SessionLog& log) {
  ContributionBreakdown out;
  for (const auto& user : log.users) {
    double bytes = 0.0;
    bool private_addr = false;
    bool had_in = false;
    bool had_out = false;
    for (std::size_t idx : user.session_indices) {
      const auto& s = log.sessions[idx];
      bytes += static_cast<double>(s.bytes_up);
      private_addr = private_addr || s.private_address;
      had_in = had_in || s.had_incoming;
      had_out = had_out || s.had_outgoing;
    }
    out.per_user_bytes.push_back(bytes);
    const auto type = net::classify_observed(private_addr, had_in, had_out);
    out.bytes_by_type[static_cast<std::size_t>(type)] += bytes;
    out.total_bytes += bytes;
  }
  return out;
}

StartupDelays startup_delays(const logging::SessionLog& log) {
  std::vector<double> start_sub;
  std::vector<double> ready;
  std::vector<double> buffering;
  for (const auto& s : log.sessions) {
    if (auto d = s.start_subscription_delay()) start_sub.push_back(*d);
    if (auto d = s.media_ready_delay()) ready.push_back(*d);
    if (auto d = s.buffering_delay()) buffering.push_back(*d);
  }
  return StartupDelays{Ecdf(std::move(start_sub)), Ecdf(std::move(ready)),
                       Ecdf(std::move(buffering))};
}

std::vector<Ecdf> ready_delay_by_period(const logging::SessionLog& log,
                                        std::span<const double> edges) {
  std::vector<std::vector<double>> buckets(
      edges.size() >= 2 ? edges.size() - 1 : 0);
  for (const auto& s : log.sessions) {
    const auto d = s.media_ready_delay();
    if (!d || !s.join_time) continue;
    for (std::size_t p = 0; p + 1 < edges.size(); ++p) {
      if (*s.join_time >= edges[p] && *s.join_time < edges[p + 1]) {
        buckets[p].push_back(*d);
        break;
      }
    }
  }
  std::vector<Ecdf> out;
  out.reserve(buckets.size());
  for (auto& b : buckets) out.emplace_back(std::move(b));
  return out;
}

std::vector<double> session_durations(const logging::SessionLog& log) {
  std::vector<double> out;
  for (const auto& s : log.sessions) {
    if (auto d = s.duration()) out.push_back(*d);
  }
  return out;
}

double short_session_fraction(const logging::SessionLog& log,
                              double threshold_s) {
  std::size_t total = 0;
  std::size_t short_count = 0;
  for (const auto& s : log.sessions) {
    if (auto d = s.duration()) {
      ++total;
      if (*d < threshold_s) ++short_count;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(short_count) /
                          static_cast<double>(total);
}

double RetryDistribution::fraction_with_retries() const noexcept {
  if (total_users == 0) return 0.0;
  std::size_t with = 0;
  for (std::size_t r = 1; r < users_by_retries.size(); ++r) {
    with += users_by_retries[r];
  }
  return static_cast<double>(with) / static_cast<double>(total_users);
}

RetryDistribution retry_distribution(const logging::SessionLog& log,
                                     std::size_t max_bucket) {
  RetryDistribution out;
  out.users_by_retries.assign(max_bucket + 1, 0);
  for (const auto& user : log.users) {
    ++out.total_users;
    if (!user.ever_succeeded) {
      ++out.never_succeeded;
      continue;
    }
    const auto r = std::min<std::size_t>(user.retries_before_success,
                                         max_bucket);
    ++out.users_by_retries[r];
  }
  return out;
}

}  // namespace coolstream::analysis
