// Control-plane overhead accounting.
//
// One of the data-driven design's selling points (§III-A) is efficiency:
// no overlay-maintenance traffic beyond gossip, periodic buffer maps and
// subscription management.  This module turns the transport's per-kind
// message counters into a byte-level overhead estimate and compares it to
// the data plane.
#pragma once

#include <array>
#include <cstdint>

#include "net/transport.h"

namespace coolstream::analysis {

/// Estimated wire cost per control message, in bytes (typical sizes for
/// the respective payloads plus TCP/IP framing).
struct ControlMessageCosts {
  double gossip = 120.0;       ///< a few mCache entries + headers
  double buffer_map = 90.0;    ///< 2K-tuple BM + headers
  double subscribe = 60.0;
  double partnership = 80.0;
  double report = 160.0;       ///< HTTP log string

  double cost_of(net::MessageKind kind) const noexcept {
    switch (kind) {
      case net::MessageKind::kGossip:
        return gossip;
      case net::MessageKind::kBufferMap:
        return buffer_map;
      case net::MessageKind::kSubscribe:
        return subscribe;
      case net::MessageKind::kPartnership:
        return partnership;
      case net::MessageKind::kReport:
        return report;
    }
    return 0.0;
  }
};

/// Overhead summary relative to the delivered video bytes.
struct OverheadReport {
  std::array<std::uint64_t, net::kMessageKindCount> messages{};
  std::array<double, net::kMessageKindCount> bytes{};
  double control_bytes_total = 0.0;
  double data_bytes_total = 0.0;

  /// control / (control + data); the paper-era mesh systems ran ~1-2 %.
  double overhead_ratio() const noexcept {
    const double total = control_bytes_total + data_bytes_total;
    return total <= 0.0 ? 0.0 : control_bytes_total / total;
  }
};

/// Builds the report from a transport's counters and the data plane's
/// delivered bytes.
OverheadReport measure_overhead(const net::Transport& transport,
                                double data_bytes,
                                ControlMessageCosts costs = {});

}  // namespace coolstream::analysis
