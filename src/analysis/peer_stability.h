// Peer-wise performance (the paper's first open issue).
//
// "First, the data set does not allow us to derive the peer-wise
// performance, which we believe it is of great relevance in understanding
// the self-stabilizing property of the system." (§VI)
//
// Our log *does* allow it: every session carries its own QoS samples and
// its compact partner reports, so we can measure per-session continuity
// distributions, per-session partnership churn, and how the two relate —
// the self-stabilization signature (high-churn peers should be the
// low-quality minority, and most peers should sit in a stable, high-
// quality regime).
#pragma once

#include <array>
#include <vector>

#include "analysis/stats.h"
#include "logging/sessions.h"
#include "net/connectivity.h"

namespace coolstream::analysis {

/// One session's stability coordinates.
struct SessionStability {
  double continuity = 1.0;          ///< session-aggregated continuity
  double partner_changes_per_min = 0.0;
  double duration_s = 0.0;
  net::ConnectionType observed_type = net::ConnectionType::kDirect;
};

/// Extracts stability coordinates for sessions that played long enough to
/// produce at least one QoS sample with due blocks and have a measurable
/// duration of at least `min_duration_s`.
std::vector<SessionStability> session_stability(
    const logging::SessionLog& log, double min_duration_s = 60.0);

/// Aggregate peer-wise view.
struct PeerwiseReport {
  Summary continuity;                 ///< distribution across sessions
  Summary churn_per_min;              ///< partner changes per minute
  double churn_quality_correlation = 0.0;  ///< Pearson(churn, continuity)
  /// Fraction of sessions in the "stable regime": continuity >= 0.99 and
  /// below-median partnership churn.
  double stable_fraction = 0.0;
  /// Mean partner changes per minute by observed type.
  std::array<double, net::kConnectionTypeCount> churn_by_type{};
  std::array<std::size_t, net::kConnectionTypeCount> sessions_by_type{};
};

PeerwiseReport peerwise_report(const logging::SessionLog& log,
                               double min_duration_s = 60.0);

}  // namespace coolstream::analysis
