// Contribution concentration: Lorenz curve, Gini coefficient, top-k share.
//
// Fig. 3b plots the user upload-bytes contribution distribution; the
// paper's headline is that ~30% of peers (direct + UPnP) contribute more
// than 80% of the upload bandwidth.  top_share() answers exactly that
// question from the traffic reports.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace coolstream::analysis {

/// Lorenz curve of non-negative contributions: points (p, L(p)) where L(p)
/// is the fraction of the total contributed by the *bottom* p of the
/// population.  Includes (0,0) and (1,1).
std::vector<std::pair<double, double>> lorenz_curve(
    std::span<const double> values, std::size_t points = 21);

/// Gini coefficient in [0, 1]; 0 = perfectly even contributions.
double gini(std::span<const double> values);

/// Fraction of the total contributed by the top `fraction` of the
/// population (e.g. top_share(v, 0.3) -> "top 30% contribute X").
double top_share(std::span<const double> values, double fraction);

/// Smallest population fraction whose members jointly contribute at least
/// `share` of the total (e.g. population_for_share(v, 0.8) -> "80% of
/// upload comes from the top X of peers").
double population_for_share(std::span<const double> values, double share);

}  // namespace coolstream::analysis
