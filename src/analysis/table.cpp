#include "analysis/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace coolstream::analysis {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t w : widths) rule.emplace_back(w, '-');
  print_row(rule);
  for (const auto& r : rows_) print_row(r);
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace coolstream::analysis
