#include "analysis/csv.h"

#include <cstdio>
#include <ostream>

namespace coolstream::analysis {
namespace {

std::string opt_time(const std::optional<double>& t) {
  if (!t) return "";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", *t);
  return buf;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void csv_row(std::ostream& os, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) os << ',';
    os << csv_escape(fields[i]);
  }
  os << '\n';
}

void write_sessions_csv(std::ostream& os, const logging::SessionLog& log) {
  csv_row(os, {"user_id", "session_id", "join", "start_sub", "ready",
               "leave", "duration", "start_sub_delay", "ready_delay",
               "buffering_delay", "is_normal", "address", "private",
               "observed_type", "had_incoming", "had_outgoing", "bytes_up",
               "bytes_down", "continuity", "partner_changes"});
  for (const auto& s : log.sessions) {
    auto opt_num = [](const std::optional<double>& v) {
      return v ? num(*v) : std::string();
    };
    csv_row(os, {std::to_string(s.user_id), std::to_string(s.session_id),
                 opt_time(s.join_time), opt_time(s.start_subscription_time_abs),
                 opt_time(s.media_ready_time_abs), opt_time(s.leave_time),
                 opt_num(s.duration()), opt_num(s.start_subscription_delay()),
                 opt_num(s.media_ready_delay()), opt_num(s.buffering_delay()),
                 s.is_normal() ? "1" : "0", s.address,
                 s.private_address ? "1" : "0",
                 std::string(net::to_string(s.observed_type())),
                 s.had_incoming ? "1" : "0", s.had_outgoing ? "1" : "0",
                 std::to_string(s.bytes_up), std::to_string(s.bytes_down),
                 opt_num(s.continuity()),
                 std::to_string(s.partner_changes)});
  }
}

void write_qos_csv(std::ostream& os, const logging::SessionLog& log) {
  csv_row(os, {"user_id", "session_id", "time", "blocks_due",
               "blocks_on_time", "continuity"});
  for (const auto& s : log.sessions) {
    for (const auto& q : s.qos) {
      const double continuity =
          q.blocks_due == 0 ? 1.0
                            : static_cast<double>(q.blocks_on_time) /
                                  static_cast<double>(q.blocks_due);
      csv_row(os, {std::to_string(s.user_id), std::to_string(s.session_id),
                   num(q.time), std::to_string(q.blocks_due),
                   std::to_string(q.blocks_on_time), num(continuity)});
    }
  }
}

}  // namespace coolstream::analysis
