#include "analysis/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace coolstream::analysis {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  double sq = 0.0;
  for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(sq / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  s.min = sorted.front();
  s.max = sorted.back();
  auto rank = [&sorted](double q) {
    const auto n = sorted.size();
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(n - 1),
                         std::ceil(q * static_cast<double>(n)) - 1.0));
    return sorted[std::max<std::size_t>(idx, 0)];
  };
  s.median = rank(0.5);
  s.p90 = rank(0.9);
  s.p99 = rank(0.99);
  return s;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Ecdf::Ecdf(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  assert(!sorted_.empty());
  assert(q >= 0.0 && q <= 1.0);
  const auto n = static_cast<double>(sorted_.size());
  const auto idx = static_cast<std::size_t>(
      std::clamp(std::ceil(q * n) - 1.0, 0.0, n - 1.0));
  return sorted_[idx];
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points < 2) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins >= 1);
}

void Histogram::add(double value) noexcept { add_n(value, 1); }

void Histogram::add_n(double value, std::size_t n) noexcept {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / w);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += n;
  total_ += n;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

}  // namespace coolstream::analysis
