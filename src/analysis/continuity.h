// Continuity-index pipelines (Figs. 8 and 9).
//
// "Continuity index is defined as the number of blocks that arrive before
// playback deadlines over the total number of blocks" (§V-D).  The
// pipeline aggregates the 5-minute QoS status reports from the log —
// reproducing the paper's measurement artefacts: intervals with no due
// blocks contribute nothing, and peers that depart before their next
// report never deliver their last interval.
#pragma once

#include <array>
#include <vector>

#include "logging/sessions.h"
#include "net/connectivity.h"

namespace coolstream::analysis {

/// One time bucket of Fig. 8: mean continuity per observed user type.
struct ContinuityBucket {
  double start = 0.0;  ///< bucket start time (s)
  /// Sum of due / on-time blocks per type; mean continuity is the ratio.
  std::array<std::uint64_t, net::kConnectionTypeCount> due{};
  std::array<std::uint64_t, net::kConnectionTypeCount> on_time{};

  double continuity(net::ConnectionType t) const noexcept {
    const auto i = static_cast<std::size_t>(t);
    return due[i] == 0 ? 1.0
                       : static_cast<double>(on_time[i]) /
                             static_cast<double>(due[i]);
  }
  /// All types pooled.
  double overall() const noexcept;
};

/// Buckets QoS samples by report time (width seconds) and observed type.
std::vector<ContinuityBucket> continuity_by_type_over_time(
    const logging::SessionLog& log, double bucket_width);

/// Average continuity index over the whole log (block-weighted), as used
/// for the Fig. 9 sweep points.
double average_continuity(const logging::SessionLog& log);

/// Average continuity per observed type over the whole log.
std::array<double, net::kConnectionTypeCount> average_continuity_by_type(
    const logging::SessionLog& log);

}  // namespace coolstream::analysis
