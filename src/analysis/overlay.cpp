#include "analysis/overlay.h"

#include <unordered_map>

#include "net/connectivity.h"

namespace coolstream::analysis {
namespace {

bool is_capable_type(net::ConnectionType t) {
  return t == net::ConnectionType::kDirect || t == net::ConnectionType::kUpnp;
}

}  // namespace

OverlayMetrics measure_overlay(const net::TopologySnapshot& snapshot) {
  OverlayMetrics m;
  std::unordered_map<net::NodeId, const net::SnapshotNode*> by_id;
  by_id.reserve(snapshot.nodes.size());
  for (const auto& n : snapshot.nodes) by_id[n.id] = &n;

  std::size_t server_parents = 0;
  std::size_t capable_parents = 0;
  std::size_t weak_parents = 0;
  std::size_t viewer_viewer_links = 0;
  std::size_t random_links = 0;
  std::size_t fully_stable = 0;
  std::size_t starving = 0;
  std::size_t partners_total = 0;
  double depth_sum = 0.0;
  std::size_t depth_count = 0;

  for (const auto& n : snapshot.nodes) {
    if (n.is_server) continue;
    ++m.viewers;
    partners_total += n.partners.size();

    bool all_stable = true;
    bool any_missing = false;
    for (net::NodeId parent_id : n.parents) {
      if (parent_id == net::kInvalidNode) {
        any_missing = true;
        all_stable = false;
        continue;
      }
      auto it = by_id.find(parent_id);
      if (it == by_id.end()) {
        any_missing = true;
        all_stable = false;
        continue;
      }
      const net::SnapshotNode& parent = *it->second;
      ++m.subscribed_edges;
      if (parent.is_server) {
        ++server_parents;
      } else {
        ++viewer_viewer_links;
        if (is_capable_type(parent.type)) {
          ++capable_parents;
        } else {
          ++weak_parents;
          all_stable = false;
          if (!is_capable_type(n.type)) ++random_links;
        }
      }
    }
    if (all_stable && !any_missing && !n.parents.empty()) ++fully_stable;
    if (any_missing) ++starving;

    if (n.depth >= 0) {
      depth_sum += n.depth;
      ++depth_count;
      m.max_depth = std::max(m.max_depth, n.depth);
      const auto d = static_cast<std::size_t>(n.depth);
      if (m.depth_histogram.size() <= d) m.depth_histogram.resize(d + 1, 0);
      ++m.depth_histogram[d];
    } else {
      ++m.unreachable;
    }
  }

  if (m.subscribed_edges > 0) {
    const auto e = static_cast<double>(m.subscribed_edges);
    m.parent_share_server = static_cast<double>(server_parents) / e;
    m.parent_share_capable = static_cast<double>(capable_parents) / e;
    m.parent_share_weak = static_cast<double>(weak_parents) / e;
  }
  if (viewer_viewer_links > 0) {
    m.random_link_fraction = static_cast<double>(random_links) /
                             static_cast<double>(viewer_viewer_links);
  }
  if (m.viewers > 0) {
    const auto v = static_cast<double>(m.viewers);
    m.fully_stable_parent_fraction = static_cast<double>(fully_stable) / v;
    m.starving_fraction = static_cast<double>(starving) / v;
    m.mean_partners = static_cast<double>(partners_total) / v;
  }
  if (depth_count > 0) {
    m.mean_depth = depth_sum / static_cast<double>(depth_count);
  }
  return m;
}

}  // namespace coolstream::analysis
