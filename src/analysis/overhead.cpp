#include "analysis/overhead.h"

namespace coolstream::analysis {

OverheadReport measure_overhead(const net::Transport& transport,
                                double data_bytes,
                                ControlMessageCosts costs) {
  OverheadReport report;
  for (int k = 0; k < net::kMessageKindCount; ++k) {
    const auto kind = static_cast<net::MessageKind>(k);
    const std::uint64_t n = transport.sent(kind);
    report.messages[static_cast<std::size_t>(k)] = n;
    const double b = static_cast<double>(n) * costs.cost_of(kind);
    report.bytes[static_cast<std::size_t>(k)] = b;
    report.control_bytes_total += b;
  }
  report.data_bytes_total = data_bytes;
  return report;
}

}  // namespace coolstream::analysis
