// Overlay structure metrics (Fig. 4 and the §V-B discussion).
//
// From a TopologySnapshot we measure the structural properties the paper
// conjectures for its "conceptual overlay":
//   * peers clog under direct-connect/UPnP parents (and servers);
//   * "random links" — NAT/firewall peers serving NAT/firewall peers —
//     are rare;
//   * the overlay is shallow and tree-like, with depth dominated by the
//     capable peers near the source.
#pragma once

#include <array>
#include <vector>

#include "net/topology.h"

namespace coolstream::net {
struct TopologySnapshot;
}

namespace coolstream::analysis {

/// Structural census of one snapshot.
struct OverlayMetrics {
  std::size_t viewers = 0;            ///< live non-server nodes
  std::size_t subscribed_edges = 0;   ///< sub-stream parent links (viewer side)

  /// Of all sub-stream parent links held by viewers: fraction whose parent
  /// is a server / direct / UPnP / NAT / firewall node.
  double parent_share_server = 0.0;
  double parent_share_capable = 0.0;  ///< direct + UPnP (non-server)
  double parent_share_weak = 0.0;     ///< NAT + firewall

  /// Fraction of viewer->viewer sub-stream links where *both* endpoints
  /// are NAT/firewall peers ("random links" in Fig. 4).
  double random_link_fraction = 0.0;

  /// Fraction of viewers whose every subscribed sub-stream comes from a
  /// server/direct/UPnP parent — the "converged" peers of §V-B.
  double fully_stable_parent_fraction = 0.0;

  /// Fraction of viewers with at least one unsubscribed sub-stream.
  double starving_fraction = 0.0;

  /// Depth statistics over viewers reachable from the servers.
  double mean_depth = 0.0;
  int max_depth = 0;
  std::size_t unreachable = 0;

  /// Mean partners per viewer.
  double mean_partners = 0.0;

  /// Histogram of viewer depths (index = depth, starting at 1).
  std::vector<std::size_t> depth_histogram;
};

/// Computes the census.  The snapshot must have depths computed (the
/// System does this in snapshot()).
OverlayMetrics measure_overlay(const net::TopologySnapshot& snapshot);

}  // namespace coolstream::analysis
