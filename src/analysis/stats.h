// Basic statistics: summaries, empirical CDFs and histograms.
//
// All figure pipelines reduce to these primitives: Fig. 6/7 are empirical
// CDFs of delays, Fig. 10 a histogram of durations and retries, Fig. 8/9
// bucketed means.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace coolstream::analysis {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary (empty input yields all zeros).
Summary summarize(std::span<const double> values);

/// Pearson correlation coefficient of two equal-length samples; 0 when
/// fewer than two points or when either sample is constant.
double pearson(std::span<const double> x, std::span<const double> y);

/// Empirical cumulative distribution function.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> values);

  std::size_t size() const noexcept { return sorted_.size(); }
  bool empty() const noexcept { return sorted_.empty(); }

  /// P(X <= x); 0 for empty samples.
  double at(double x) const noexcept;

  /// Inverse CDF; q in [0, 1].  Uses the nearest-rank method.
  double quantile(double q) const;

  const std::vector<double>& sorted() const noexcept { return sorted_; }

  /// Evaluation grid: `points` (x, F(x)) pairs spanning [min, max].
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void add_n(double value, std::size_t n) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const noexcept;
  double bin_hi(std::size_t bin) const noexcept;
  /// Fraction of samples in `bin` (0 when empty).
  double fraction(std::size_t bin) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace coolstream::analysis
