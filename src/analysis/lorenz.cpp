#include "analysis/lorenz.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace coolstream::analysis {
namespace {

/// Ascending-sorted copy with the total; empty/zero-total handled by
/// callers.
std::pair<std::vector<double>, double> sorted_with_total(
    std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (double v : sorted) {
    assert(v >= 0.0);
    total += v;
  }
  return {std::move(sorted), total};
}

}  // namespace

std::vector<std::pair<double, double>> lorenz_curve(
    std::span<const double> values, std::size_t points) {
  std::vector<std::pair<double, double>> curve;
  auto [sorted, total] = sorted_with_total(values);
  if (sorted.empty() || total <= 0.0 || points < 2) {
    curve.emplace_back(0.0, 0.0);
    curve.emplace_back(1.0, 1.0);
    return curve;
  }
  // Cumulative sums, then sample the curve at `points` population levels.
  std::vector<double> cum(sorted.size());
  double run = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    run += sorted[i];
    cum[i] = run;
  }
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        static_cast<double>(i) / static_cast<double>(points - 1);
    // floor keeps L(p) at or below the diagonal (the bottom floor(p*n)
    // contributors hold at most p of the total).
    const auto k = static_cast<std::size_t>(
        std::floor(p * static_cast<double>(sorted.size())));
    const double l = k == 0 ? 0.0 : cum[k - 1] / total;
    curve.emplace_back(p, l);
  }
  return curve;
}

double gini(std::span<const double> values) {
  auto [sorted, total] = sorted_with_total(values);
  const auto n = sorted.size();
  if (n == 0 || total <= 0.0) return 0.0;
  // G = (2 * sum_i i*x_i) / (n * total) - (n + 1) / n, i = 1..n ascending.
  double weighted = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  const double nd = static_cast<double>(n);
  return 2.0 * weighted / (nd * total) - (nd + 1.0) / nd;
}

double top_share(std::span<const double> values, double fraction) {
  assert(fraction >= 0.0 && fraction <= 1.0);
  auto [sorted, total] = sorted_with_total(values);
  if (sorted.empty() || total <= 0.0) return 0.0;
  const auto take = static_cast<std::size_t>(
      std::round(fraction * static_cast<double>(sorted.size())));
  double sum = 0.0;
  for (std::size_t i = sorted.size() - take; i < sorted.size(); ++i) {
    sum += sorted[i];
  }
  return sum / total;
}

double population_for_share(std::span<const double> values, double share) {
  assert(share >= 0.0 && share <= 1.0);
  auto [sorted, total] = sorted_with_total(values);
  if (sorted.empty() || total <= 0.0) return 0.0;
  double need = share * total;
  std::size_t taken = 0;
  for (std::size_t i = sorted.size(); i-- > 0;) {
    need -= sorted[i];
    ++taken;
    if (need <= 0.0) break;
  }
  return static_cast<double>(taken) / static_cast<double>(sorted.size());
}

}  // namespace coolstream::analysis
