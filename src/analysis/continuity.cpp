#include "analysis/continuity.h"

#include <algorithm>
#include <cmath>

namespace coolstream::analysis {

double ContinuityBucket::overall() const noexcept {
  std::uint64_t d = 0;
  std::uint64_t o = 0;
  for (std::size_t i = 0; i < due.size(); ++i) {
    d += due[i];
    o += on_time[i];
  }
  return d == 0 ? 1.0 : static_cast<double>(o) / static_cast<double>(d);
}

std::vector<ContinuityBucket> continuity_by_type_over_time(
    const logging::SessionLog& log, double bucket_width) {
  std::vector<ContinuityBucket> buckets;
  auto bucket_for = [&](double t) -> ContinuityBucket& {
    const auto idx = static_cast<std::size_t>(
        std::max(0.0, t) / bucket_width);
    while (buckets.size() <= idx) {
      ContinuityBucket b;
      b.start = bucket_width * static_cast<double>(buckets.size());
      buckets.push_back(b);
    }
    return buckets[idx];
  };
  for (const auto& s : log.sessions) {
    const auto type = static_cast<std::size_t>(s.observed_type());
    for (const auto& q : s.qos) {
      ContinuityBucket& b = bucket_for(q.time);
      b.due[type] += q.blocks_due;
      b.on_time[type] += q.blocks_on_time;
    }
  }
  return buckets;
}

double average_continuity(const logging::SessionLog& log) {
  std::uint64_t due = 0;
  std::uint64_t on_time = 0;
  for (const auto& s : log.sessions) {
    for (const auto& q : s.qos) {
      due += q.blocks_due;
      on_time += q.blocks_on_time;
    }
  }
  return due == 0 ? 1.0
                  : static_cast<double>(on_time) / static_cast<double>(due);
}

std::array<double, net::kConnectionTypeCount> average_continuity_by_type(
    const logging::SessionLog& log) {
  std::array<std::uint64_t, net::kConnectionTypeCount> due{};
  std::array<std::uint64_t, net::kConnectionTypeCount> on_time{};
  for (const auto& s : log.sessions) {
    const auto type = static_cast<std::size_t>(s.observed_type());
    for (const auto& q : s.qos) {
      due[type] += q.blocks_due;
      on_time[type] += q.blocks_on_time;
    }
  }
  std::array<double, net::kConnectionTypeCount> out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = due[i] == 0 ? 1.0
                         : static_cast<double>(on_time[i]) /
                               static_cast<double>(due[i]);
  }
  return out;
}

}  // namespace coolstream::analysis
