// CSV export of the measurement pipeline's outputs.
//
// RFC-4180-style quoting; writers for the session table and QoS samples so
// recorded broadcasts can be analyzed outside this repository (R/pandas).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "logging/sessions.h"

namespace coolstream::analysis {

/// Quotes a CSV field when needed (commas, quotes, newlines).
std::string csv_escape(const std::string& field);

/// Writes one CSV row.
void csv_row(std::ostream& os, const std::vector<std::string>& fields);

/// Writes the per-session table: one row per session with identity,
/// timing, classification and traffic columns.  Column order is stable:
///   user_id,session_id,join,start_sub,ready,leave,duration,
///   start_sub_delay,ready_delay,buffering_delay,is_normal,address,
///   private,observed_type,had_incoming,had_outgoing,bytes_up,bytes_down,
///   continuity,partner_changes
void write_sessions_csv(std::ostream& os, const logging::SessionLog& log);

/// Writes the QoS samples table: one row per 5-minute QoS report:
///   user_id,session_id,time,blocks_due,blocks_on_time,continuity
void write_qos_csv(std::ostream& os, const logging::SessionLog& log);

}  // namespace coolstream::analysis
