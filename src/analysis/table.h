// ASCII table / series printers shared by the bench binaries.
//
// Benches print the same rows/series the paper's figures plot; these
// helpers keep the output format consistent and machine-greppable
// (columns separated by two spaces, one header line, aligned).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace coolstream::analysis {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row (cells are pre-formatted strings).
  void row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits.
  void row_values(const std::vector<double>& values, int precision = 3);

  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string fmt(double value, int precision = 3);

/// Formats a fraction as a percentage ("97.3%").
std::string pct(double fraction, int precision = 1);

/// Prints a section banner ("== Fig. 5a: ... ==").
void banner(std::ostream& os, const std::string& title);

}  // namespace coolstream::analysis
