// Session-level figure pipelines (Figs. 3, 6, 7, 10).
//
// Everything here consumes a logging::SessionLog — the reconstruction of
// the paper's log file — and produces the series the figures plot.
#pragma once

#include <array>
#include <vector>

#include "analysis/stats.h"
#include "logging/sessions.h"
#include "net/connectivity.h"

namespace coolstream::analysis {

/// Fig. 3a: observed user-type shares (by the §V-B classification applied
/// to logged sessions that reported both join and leave).
struct TypeDistribution {
  std::array<std::size_t, net::kConnectionTypeCount> counts{};
  std::size_t total = 0;

  double share(net::ConnectionType t) const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(
                            counts[static_cast<std::size_t>(t)]) /
                            static_cast<double>(total);
  }
};

TypeDistribution observed_type_distribution(
    const logging::SessionLog& log);

/// Fig. 3b inputs: per-user upload bytes (summed across sessions from the
/// traffic reports), and the same split by observed type.
struct ContributionBreakdown {
  std::vector<double> per_user_bytes;  ///< all users, unordered
  std::array<double, net::kConnectionTypeCount> bytes_by_type{};
  double total_bytes = 0.0;

  double type_share(net::ConnectionType t) const noexcept {
    return total_bytes == 0.0
               ? 0.0
               : bytes_by_type[static_cast<std::size_t>(t)] / total_bytes;
  }
};

ContributionBreakdown upload_contributions(const logging::SessionLog& log);

/// Fig. 6: delays of normal sessions.
struct StartupDelays {
  Ecdf start_subscription;  ///< join -> start-subscription
  Ecdf media_ready;         ///< join -> media-player-ready
  Ecdf buffering;           ///< start-subscription -> ready (the 10-20 s)
};

StartupDelays startup_delays(const logging::SessionLog& log);

/// Fig. 7: media-ready delay split across time-of-run periods.  `edges`
/// has N+1 boundaries (seconds) producing N period ECDFs labelled by
/// their [edge_i, edge_i+1) window on join time.
std::vector<Ecdf> ready_delay_by_period(const logging::SessionLog& log,
                                        std::span<const double> edges);

/// Fig. 10a: session durations (seconds) of sessions with join+leave.
std::vector<double> session_durations(const logging::SessionLog& log);

/// Fraction of logged sessions shorter than `threshold_s`.
double short_session_fraction(const logging::SessionLog& log,
                              double threshold_s = 60.0);

/// Fig. 10b: distribution of per-user retry counts; index r = users that
/// needed exactly r extra attempts before success (index capped at the
/// last bucket, which accumulates ">= size-1"; users that never succeeded
/// count in `never_succeeded`).
struct RetryDistribution {
  std::vector<std::size_t> users_by_retries;  ///< index = retries
  std::size_t never_succeeded = 0;
  std::size_t total_users = 0;

  double fraction_with_retries() const noexcept;
};

RetryDistribution retry_distribution(const logging::SessionLog& log,
                                     std::size_t max_bucket = 6);

}  // namespace coolstream::analysis
