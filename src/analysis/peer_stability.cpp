#include "analysis/peer_stability.h"

#include <algorithm>

namespace coolstream::analysis {

std::vector<SessionStability> session_stability(
    const logging::SessionLog& log, double min_duration_s) {
  std::vector<SessionStability> out;
  for (const auto& s : log.sessions) {
    const auto continuity = s.continuity();
    if (!continuity) continue;  // no QoS data: never played a full interval
    // Duration: measured when closed; for still-open sessions use the span
    // from join to the last QoS report.
    double duration = 0.0;
    if (auto d = s.duration()) {
      duration = *d;
    } else if (s.join_time && !s.qos.empty()) {
      duration = s.qos.back().time - *s.join_time;
    }
    if (duration < min_duration_s) continue;
    SessionStability entry;
    entry.continuity = *continuity;
    entry.partner_changes_per_min =
        static_cast<double>(s.partner_changes) / (duration / 60.0);
    entry.duration_s = duration;
    entry.observed_type = s.observed_type();
    out.push_back(entry);
  }
  return out;
}

PeerwiseReport peerwise_report(const logging::SessionLog& log,
                               double min_duration_s) {
  const auto sessions = session_stability(log, min_duration_s);
  PeerwiseReport report;
  if (sessions.empty()) return report;

  std::vector<double> continuity;
  std::vector<double> churn;
  continuity.reserve(sessions.size());
  churn.reserve(sessions.size());
  std::array<double, net::kConnectionTypeCount> churn_sum{};
  for (const auto& s : sessions) {
    continuity.push_back(s.continuity);
    churn.push_back(s.partner_changes_per_min);
    const auto t = static_cast<std::size_t>(s.observed_type);
    churn_sum[t] += s.partner_changes_per_min;
    ++report.sessions_by_type[t];
  }
  report.continuity = summarize(continuity);
  report.churn_per_min = summarize(churn);
  report.churn_quality_correlation = pearson(churn, continuity);

  const double churn_median = report.churn_per_min.median;
  std::size_t stable = 0;
  for (const auto& s : sessions) {
    if (s.continuity >= 0.99 && s.partner_changes_per_min <= churn_median) {
      ++stable;
    }
  }
  report.stable_fraction =
      static_cast<double>(stable) / static_cast<double>(sessions.size());

  for (std::size_t t = 0; t < net::kConnectionTypeCount; ++t) {
    report.churn_by_type[t] =
        report.sessions_by_type[t] == 0
            ? 0.0
            : churn_sum[t] / static_cast<double>(report.sessions_by_type[t]);
  }
  return report;
}

}  // namespace coolstream::analysis
