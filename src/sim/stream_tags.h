// Registry of Rng::stream() tag namespaces.
//
// Every subsystem that derives a substream from a run's root RNG does so
// through a tag listed here, so tag collisions — two subsystems silently
// sharing one random stream — are impossible by construction:
//
//   * workload drivers use the small ASCII literals (kFaultStreamTag,
//     kChurnStreamTag), all below 2^40;
//   * every peer owns the per-node substream peer_stream_tag(id), living
//     in the disjoint "PEER" namespace above 2^56.
//
// The sharded System relies on this partition-independence: a peer's
// random decisions are drawn from its own tagged stream, so they do not
// depend on which shard evaluates it or on how many shards exist.  The
// static_asserts below are the "no stream-tag collisions" check the
// sharded engine's determinism argument rests on; System::start() also
// asserts it at run time against the widest possible node id.
#pragma once

#include <cstdint>

namespace coolstream::sim {

/// Fault-injection schedule stream ("fault" in ASCII).
inline constexpr std::uint64_t kFaultStreamTag = 0x6661756c74ULL;

/// Churn-driver schedule stream ("churn" in ASCII).
inline constexpr std::uint64_t kChurnStreamTag = 0x636875726eULL;

/// Reserved subsystem tags all live below this bound.
inline constexpr std::uint64_t kMaxReservedStreamTag = 1ULL << 40;

/// Base of the per-peer tag namespace ("PEER" shifted clear of the
/// reserved range); the low 32 bits carry the node id.
inline constexpr std::uint64_t kPeerStreamTagBase = 0x50454552ULL << 32;

/// The tag of peer `node_id`'s private random stream.
constexpr std::uint64_t peer_stream_tag(std::uint64_t node_id) noexcept {
  return kPeerStreamTagBase | (node_id & 0xFFFF'FFFFULL);
}

// The two namespaces must be disjoint for every representable id: the
// smallest peer tag already clears the reserved ceiling, and the id mask
// cannot disturb the base (its low 32 bits are zero), so peer tags are
// both injective on the 32-bit id and strictly above every reserved tag.
static_assert(kFaultStreamTag < kMaxReservedStreamTag);
static_assert(kChurnStreamTag < kMaxReservedStreamTag);
static_assert(kPeerStreamTagBase >= kMaxReservedStreamTag);
static_assert(peer_stream_tag(0) == kPeerStreamTagBase);
static_assert(peer_stream_tag(0xFFFF'FFFFULL) >= kPeerStreamTagBase);
static_assert((kPeerStreamTagBase & 0xFFFF'FFFFULL) == 0);

}  // namespace coolstream::sim
