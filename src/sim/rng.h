// Deterministic random number generation for the simulator.
//
// Every simulation run is a pure function of a 64-bit seed.  We deliberately
// avoid std::mt19937 + std::*_distribution because their outputs are not
// guaranteed to be identical across standard library implementations; all
// generators and distributions here are specified bit-exactly so that traces
// and test expectations are portable.
//
// Rng is xoshiro256++ seeded via splitmix64.  Independent streams for
// parallel parameter sweeps are derived with Rng::fork(), which uses the
// splitmix64 sequence of the parent seed, guaranteeing streams do not overlap
// in practice.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace coolstream::sim {

/// Splitmix64 step: the canonical 64-bit mixing function used for seeding.
/// Advances `state` and returns the next value of the sequence.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256++ pseudo random generator with distribution helpers.
///
/// All methods are deterministic given the seed, and the implementation is
/// self-contained so results are identical on every platform.
class Rng {
 public:
  /// Constructs a generator whose state is derived from `seed` via
  /// splitmix64 (as recommended by the xoshiro authors).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).  Uses the top 53 bits of next_u64().
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  `n` must be > 0.  Uses Lemire's unbiased
  /// bounded generation.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponential variate with the given mean (mean = 1/rate, must be > 0).
  double exponential(double mean) noexcept;

  /// Pareto (type I) variate with scale x_m > 0 and shape alpha > 0.
  /// Heavy tailed; used for session durations.
  double pareto(double x_m, double alpha) noexcept;

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double lo, double hi, double alpha) noexcept;

  /// Lognormal variate where `mu`/`sigma` parameterize the underlying
  /// normal distribution.
  double lognormal(double mu, double sigma) noexcept;

  /// Standard normal variate (Box-Muller; consumes two uniforms every
  /// other call and caches the second value).
  double normal() noexcept;

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Weibull variate with scale lambda > 0 and shape k > 0.
  double weibull(double lambda, double k) noexcept;

  /// Zipf-distributed integer in [1, n] with exponent s >= 0, by inversion
  /// on the precomputed CDF is avoided; uses rejection-inversion
  /// (Hörmann & Derflinger) so it is O(1) without setup tables.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to
  /// `weights` (non-negative, not all zero).
  std::size_t weighted(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Picks k distinct indices uniformly from [0, n) (k <= n), in random
  /// order.  O(k) expected time via Floyd's algorithm.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// sample_indices into a caller-owned buffer (cleared first): identical
  /// draw sequence, no allocation once the buffer's capacity is warm.
  void sample_indices_into(std::size_t n, std::size_t k,
                           std::vector<std::size_t>& out);

  /// Derives an independent child generator.  Each call yields a distinct
  /// stream; the parent state advances.
  Rng fork() noexcept;

  /// Derives an independent child generator keyed by `tag`, without
  /// touching this generator's state (unlike fork()).  The same
  /// (seed, tag) pair always yields the same stream, and streams with
  /// different tags are statistically independent — use for decoupling
  /// subsystems (fault injection, churn, workload) that must not perturb
  /// each other's draws.
  Rng stream(std::uint64_t tag) const noexcept;

  /// The seed this generator was constructed with (forked generators report
  /// their derived seed).
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace coolstream::sim
