#include "sim/time_series.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace coolstream::sim {

void TimeSeries::record(Time t, double value) {
  assert(samples_.empty() || t >= samples_.back().time);
  samples_.push_back(Sample{t, value});
}

std::optional<double> TimeSeries::value_at(Time t) const {
  // Last sample with time <= t.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](Time lhs, const Sample& s) { return lhs < s.time; });
  if (it == samples_.begin()) return std::nullopt;
  return std::prev(it)->value;
}

double TimeSeries::min_value() const {
  assert(!samples_.empty());
  return std::min_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.value < b.value;
                          })
      ->value;
}

double TimeSeries::max_value() const {
  assert(!samples_.empty());
  return std::max_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.value < b.value;
                          })
      ->value;
}

BucketSeries::BucketSeries(Duration width, Time origin)
    : width_(width), origin_(origin) {
  assert(width > Duration::zero());
}

void BucketSeries::record(Time t, double value) {
  std::size_t index = 0;
  if (t > origin_) {
    index = static_cast<std::size_t>((t - origin_) / width_);
  }
  while (buckets_.size() <= index) {
    buckets_.push_back(
        Bucket{origin_ + width_ * static_cast<double>(buckets_.size()), 0, 0.0,
               std::numeric_limits<double>::infinity(),
               -std::numeric_limits<double>::infinity()});
  }
  Bucket& b = buckets_[index];
  ++b.count;
  b.sum += value;
  b.min = std::min(b.min, value);
  b.max = std::max(b.max, value);
}

void StepCounter::add(Time t, int delta) {
  assert(steps_.empty() || t >= steps_.back().first);
  value_ += delta;
  steps_.emplace_back(t, value_);
}

std::vector<Sample> StepCounter::sample_grid(Time t0, Time t1,
                                             Duration dt) const {
  assert(dt > Duration::zero() && t1 >= t0);
  std::vector<Sample> out;
  std::size_t i = 0;
  long long current = 0;
  for (Time t = t0; t <= t1 + dt * 0.5; t += dt) {
    while (i < steps_.size() && steps_[i].first <= t) {
      current = steps_[i].second;
      ++i;
    }
    out.push_back(Sample{t, static_cast<double>(current)});
  }
  return out;
}

double StepCounter::time_average(Time t0, Time t1) const {
  assert(t1 > t0);
  double integral = 0.0;
  long long current = 0;
  Time prev = t0;
  for (const auto& [t, v] : steps_) {
    if (t <= t0) {
      current = v;
      continue;
    }
    if (t >= t1) break;
    integral += static_cast<double>(current) * (t - prev).value();
    prev = t;
    current = v;
  }
  integral += static_cast<double>(current) * (t1 - prev).value();
  return integral / (t1 - t0).value();
}

long long StepCounter::peak(Time t1) const {
  long long best = 0;
  for (const auto& [t, v] : steps_) {
    if (t > t1) break;
    best = std::max(best, v);
  }
  return best;
}

}  // namespace coolstream::sim
