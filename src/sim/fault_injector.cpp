#include "sim/fault_injector.h"

#include <algorithm>
#include <sstream>

namespace coolstream::sim {
namespace {

bool matches(FaultNode entry, FaultNode from, FaultNode to) noexcept {
  return entry == kFaultAnyNode || entry == from || entry == to;
}

void put_node(std::ostream& os, FaultNode node) {
  if (node == kFaultAnyNode) {
    os << '*';
  } else {
    os << node;
  }
}

bool get_node(std::istream& is, FaultNode& out) {
  std::string tok;
  if (!(is >> tok)) return false;
  if (tok == "*") {
    out = kFaultAnyNode;
    return true;
  }
  try {
    std::size_t used = 0;
    const unsigned long v = std::stoul(tok, &used);
    if (used != tok.size() || v > 0xffffffffUL) return false;
    out = static_cast<FaultNode>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool get_window(std::istream& is, FaultWindow& w) {
  double start = 0.0;
  double end = 0.0;
  if (!(is >> start >> end)) return false;
  if (!(end >= start) || start < 0.0) return false;
  w.start = units::Tick(start);
  w.end = units::Tick(end);
  return true;
}

bool probability(double p) noexcept { return p >= 0.0 && p <= 1.0; }

}  // namespace

std::string FaultSchedule::to_text() const {
  std::ostringstream out;
  out.precision(17);
  for (const MessageFault& m : messages) {
    out << "msg " << m.window.start << ' ' << m.window.end << ' ';
    put_node(out, m.node);
    out << ' ' << m.drop << ' ' << m.dup << ' ' << m.jitter << ' '
        << m.max_jitter << '\n';
  }
  for (const CapacityFault& c : capacities) {
    out << "cap " << c.window.start << ' ' << c.window.end << ' ';
    put_node(out, c.node);
    out << ' ' << c.factor << '\n';
  }
  for (const FlapFault& f : flaps) {
    out << "flap " << f.window.start << ' ' << f.window.end << ' ';
    put_node(out, f.node);
    out << '\n';
  }
  return out.str();
}

std::optional<FaultSchedule> FaultSchedule::parse(const std::string& text) {
  FaultSchedule s;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) continue;
    if (verb == "msg") {
      MessageFault m;
      double max_jitter = 0.0;
      if (!get_window(ls, m.window) || !get_node(ls, m.node) ||
          !(ls >> m.drop >> m.dup >> m.jitter >> max_jitter)) {
        return std::nullopt;
      }
      if (!probability(m.drop) || !probability(m.dup) ||
          !probability(m.jitter) || max_jitter < 0.0) {
        return std::nullopt;
      }
      m.max_jitter = units::Duration(max_jitter);
      s.messages.push_back(m);
    } else if (verb == "cap") {
      CapacityFault c;
      if (!get_window(ls, c.window) || !get_node(ls, c.node) ||
          !(ls >> c.factor) || c.factor < 0.0) {
        return std::nullopt;
      }
      s.capacities.push_back(c);
    } else if (verb == "flap") {
      FlapFault f;
      if (!get_window(ls, f.window) || !get_node(ls, f.node)) {
        return std::nullopt;
      }
      s.flaps.push_back(f);
    } else {
      return std::nullopt;
    }
  }
  return s;
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultSchedule schedule)
    : schedule_(std::move(schedule)), rng_(seed), seed_(seed) {}

MessageDecision FaultInjector::on_message(units::Tick now, FaultNode from,
                                          FaultNode to) {
  MessageDecision d;
  bool seen = false;
  for (const MessageFault& m : schedule_.messages) {
    if (!m.window.contains(now) || !matches(m.node, from, to)) continue;
    if (!seen) {
      seen = true;
      ++counters_.messages_seen;
    }
    if (m.drop > 0.0 && rng_.chance(m.drop)) {
      d.drop = true;
      ++counters_.dropped;
      return d;  // a dropped message cannot also be duplicated or delayed
    }
    if (m.dup > 0.0 && !d.duplicate && rng_.chance(m.dup)) {
      d.duplicate = true;
      d.duplicate_delay =
          units::Duration(rng_.uniform(0.0, m.max_jitter.value()));
      ++counters_.duplicated;
    }
    if (m.jitter > 0.0 && rng_.chance(m.jitter)) {
      d.extra_delay +=
          units::Duration(rng_.uniform(0.0, m.max_jitter.value()));
      ++counters_.jittered;
    }
  }
  return d;
}

double FaultInjector::capacity_factor(units::Tick now,
                                      FaultNode node) const noexcept {
  double factor = 1.0;
  for (const CapacityFault& c : schedule_.capacities) {
    if (c.window.contains(now) && matches(c.node, node, node)) {
      factor *= c.factor;
    }
  }
  return std::max(factor, 0.0);
}

bool FaultInjector::inbound_blocked(units::Tick now,
                                    FaultNode node) const noexcept {
  for (const FlapFault& f : schedule_.flaps) {
    if (f.window.contains(now) && matches(f.node, node, node)) return true;
  }
  return false;
}

bool FaultInjector::any_active(units::Tick now) const noexcept {
  for (const MessageFault& m : schedule_.messages) {
    if (m.window.contains(now)) return true;
  }
  for (const CapacityFault& c : schedule_.capacities) {
    if (c.window.contains(now)) return true;
  }
  for (const FlapFault& f : schedule_.flaps) {
    if (f.window.contains(now)) return true;
  }
  return false;
}

units::Tick FaultInjector::last_window_end() const noexcept {
  units::Tick last = units::Tick::zero();
  for (const MessageFault& m : schedule_.messages) {
    last = std::max(last, m.window.end);
  }
  for (const CapacityFault& c : schedule_.capacities) {
    last = std::max(last, c.window.end);
  }
  for (const FlapFault& f : schedule_.flaps) {
    last = std::max(last, f.window.end);
  }
  return last;
}

}  // namespace coolstream::sim
