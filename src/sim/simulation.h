// Discrete-event simulation engine.
//
// A Simulation owns the clock, the event queue, and the root RNG.  All
// protocol code schedules work through this interface; nothing in the
// repository reads wall-clock time.  Runs are deterministic: the same seed
// and the same schedule of calls produce bit-identical results.
//
// Scheduling is allocation-free on the common path: callables are stored
// in-place inside slab-allocated event records (see sim/event_queue.h), and
// periodic series reuse one record for their whole lifetime.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace coolstream::sim {

/// Discrete-event engine: clock + event queue + deterministic RNG.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Root random generator for this run.
  Rng& rng() noexcept { return rng_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  template <typename F>
  EventHandle at(Time when, F&& fn) {
    assert(when >= now_);
    return queue_.schedule(when, std::forward<F>(fn));
  }

  /// Schedules `fn` to fire `delay` after now (delay >= 0).
  template <typename F>
  EventHandle after(Duration delay, F&& fn) {
    assert(delay >= Duration::zero());
    return queue_.schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` every `period` seconds starting `first_delay` seconds
  /// from now, until the returned handle is cancelled.  Occurrence n fires
  /// at exactly (now + first_delay) + n*period — absolute arithmetic, so
  /// rounding error does not accumulate over long runs.  The callback runs
  /// before the next occurrence is scheduled, and cancelling from inside
  /// the callback stops the series.
  ///
  /// Periodic events are the backbone of the protocol loops (buffer-map
  /// exchange, gossip, adaptation checks, 5-minute status reports).
  template <typename F>
  EventHandle every(Duration first_delay, Duration period, F&& fn) {
    assert(first_delay >= Duration::zero() && period > Duration::zero());
    return queue_.schedule_every(now_ + first_delay, period,
                                 std::forward<F>(fn));
  }

  /// Runs events until the queue drains or the clock would pass `until`.
  /// The clock is left at min(until, time of last event executed); if the
  /// queue drained earlier, the clock is advanced to `until` so that
  /// subsequent after() calls behave intuitively.
  void run_until(Time until);

  /// Runs until the event queue is empty.
  void run() { run_until(Time::max()); }

  /// Executes at most one pending event (if any is due before `until`).
  /// Returns true if an event ran.  Useful for test harnesses that need to
  /// single-step the simulation.
  bool step(Time until = Time::max());

  /// Number of events executed since construction.
  std::uint64_t events_executed() const noexcept { return executed_; }

  /// Direct access to the queue (tests / instrumentation only).
  EventQueue& queue() noexcept { return queue_; }

 private:
  Time now_{};
  EventQueue queue_;
  Rng rng_;
  std::uint64_t executed_ = 0;
};

}  // namespace coolstream::sim
