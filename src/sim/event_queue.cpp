#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace coolstream::sim {

EventHandle EventQueue::schedule(Time at, EventFn fn) {
  auto alive = std::make_shared<bool>(true);
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), alive});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(std::move(alive));
}

void EventQueue::skim() {
  while (!heap_.empty() && !*heap_.front().alive) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() {
  skim();
  return heap_.empty();
}

Time EventQueue::next_time() {
  skim();
  assert(!heap_.empty());
  return heap_.front().time;
}

std::pair<Time, EventFn> EventQueue::pop() {
  skim();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  *e.alive = false;  // fired events report !pending()
  return {e.time, std::move(e.fn)};
}

}  // namespace coolstream::sim
