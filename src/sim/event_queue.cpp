#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace coolstream::sim {

EventQueue::EventQueue() {
  buckets_.assign(kMinBuckets, kNil);
  year_span_ = bucket_width_ * static_cast<double>(buckets_.size());
  geometry_events_ = kMinBuckets;
}

EventQueue::~EventQueue() = default;

// --------------------------------------------------------------------------
// Slab
// --------------------------------------------------------------------------

void EventQueue::grow_slab() {
  auto chunk = std::make_unique<Record[]>(kChunkSize);
  // Chain the fresh records into the free list, lowest slot first so early
  // allocations get low slot numbers (nicer for debugging; irrelevant for
  // ordering, which is by (time, seq)).
  const std::uint32_t base = slot_count_;
  for (std::size_t i = kChunkSize; i-- > 0;) {
    chunk[i].next = free_head_;
    free_head_ = base + static_cast<std::uint32_t>(i);
  }
  chunks_.push_back(std::move(chunk));
  slot_count_ = base + static_cast<std::uint32_t>(kChunkSize);
}

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ == kNil) grow_slab();
  const std::uint32_t slot = free_head_;
  Record& r = record(slot);
  free_head_ = r.next;
  r.next = kNil;
  r.prev = kNil;
  return slot;
}

void EventQueue::free_slot(std::uint32_t slot) noexcept {
  Record& r = record(slot);
  r.where = Where::kFree;
  r.periodic = false;
  r.next = free_head_;
  free_head_ = slot;
}

// --------------------------------------------------------------------------
// Scheduling
// --------------------------------------------------------------------------

EventHandle EventQueue::arm(std::uint32_t slot, Time at, bool periodic,
                            Duration period) {
  Record& r = record(slot);
  r.time = at;
  r.seq = next_seq_++;
  r.periodic = periodic;
  r.period = period;
  r.base = at;
  r.fires = 0;
  link(slot);
  maybe_rebuild();
  return EventHandle(this, handle_id(slot, r.generation));
}

void EventQueue::link(std::uint32_t slot) {
  place(slot);
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  // Keep the memoized minimum valid: a new event only displaces it when it
  // orders earlier.
  if (cached_min_ != kNil) {
    const Record& c = record(cached_min_);
    const Record& n = record(slot);
    if (n.time < c.time || (n.time == c.time && n.seq < c.seq)) {
      cached_min_ = slot;
    }
  } else if (live_ == 1) {
    cached_min_ = slot;  // the queue was empty: this event is the minimum
  }
}

void EventQueue::place(std::uint32_t slot) {
  Record& r = record(slot);
  const double t = r.time.value();
  if (t >= year_start_ && t < year_start_ + year_span_) {
    const std::size_t b = bucket_index(r.time);
    r.where = Where::kBucket;
    r.pos = static_cast<std::uint32_t>(b);
    r.prev = kNil;
    r.next = buckets_[b];
    if (r.next != kNil) record(r.next).prev = slot;
    buckets_[b] = slot;
    ++bucketed_;
    if (b < cursor_) cursor_ = b;
  } else {
    heap_push(slot);
  }
}

void EventQueue::unlink(std::uint32_t slot) noexcept {
  Record& r = record(slot);
  if (r.where == Where::kBucket) {
    if (r.prev != kNil) {
      record(r.prev).next = r.next;
    } else {
      buckets_[r.pos] = r.next;
    }
    if (r.next != kNil) record(r.next).prev = r.prev;
    --bucketed_;
  } else {
    assert(r.where == Where::kHeap);
    heap_remove(r.pos);
  }
  r.where = Where::kExecuting;
  r.prev = kNil;
  r.next = kNil;
  --live_;
  cached_min_ = kNil;
}

std::size_t EventQueue::bucket_index(Time t) const noexcept {
  // Multiply by the cached reciprocal instead of dividing: this runs on
  // every placement.  The result can differ from floor(t/width) by one
  // bucket in the last ulp, which is harmless — correctness only needs the
  // mapping to be monotone in t (it is: multiply and truncate both are),
  // since find_min() orders by the exact (time, seq) within a bucket.
  const auto b = static_cast<std::size_t>((t.value() - year_start_) *
                                          inv_bucket_width_);
  // Clamp: floating-point rounding at the year's edge must not escape the
  // array.
  return b < buckets_.size() ? b : buckets_.size() - 1;
}

void EventQueue::advance_year(Time t) noexcept {
  if (!std::isfinite(t.value())) return;  // leave non-finite times to the heap
  year_start_ = std::floor(t.value() / year_span_) * year_span_;
  cursor_ = bucket_index(t);
  if (heap_.empty()) return;
  // Migrate every heap event that now falls inside the calendar window.
  // Near a year boundary a large fraction of the schedule transits the
  // heap, so this is a linear partition + re-heapify (O(m)) rather than
  // repeated heap pops (O(k log m)).  The membership test must match
  // place()'s exactly: floor(t/span)*span can round to just above t, and
  // an event place() would bounce back onto heap_ while we iterate over it
  // would loop forever.  Such events stay in the heap and are served from
  // there (find_min() always considers the heap top).
  const double year_end = year_start_ + year_span_;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const std::uint32_t s = heap_[i];
    const double tt = record(s).time.value();
    if (tt >= year_start_ && tt < year_end) {
      place(s);
    } else {
      heap_[keep] = s;
      record(s).pos = static_cast<std::uint32_t>(keep);
      ++keep;
    }
  }
  heap_.resize(keep);
  for (std::size_t i = keep / 2; i-- > 0;) heap_sift_down(i);
}

std::uint32_t EventQueue::find_min() {
  assert(live_ > 0);
  if (cached_min_ != kNil) return cached_min_;
  if (bucketed_ == 0 && !heap_.empty()) {
    // The calendar ran dry: jump it to the heap's earliest event so the
    // near future is bucketed again.
    advance_year(record(heap_.front()).time);
  }
  std::uint32_t best = kNil;
  if (bucketed_ > 0) {
    // All bucketed events live at or after cursor_; buckets partition time,
    // so the first non-empty bucket holds the earliest bucketed event.
    std::size_t b = cursor_;
    while (buckets_[b] == kNil) ++b;
    cursor_ = b;
    best = buckets_[b];
    const Record* rb = &record(best);
    for (std::uint32_t s = rb->next; s != kNil;) {
      const Record& rs = record(s);
      if (rs.time < rb->time || (rs.time == rb->time && rs.seq < rb->seq)) {
        best = s;
        rb = &rs;
      }
      s = rs.next;
    }
  }
  if (!heap_.empty()) {
    const std::uint32_t top = heap_.front();
    if (best == kNil || heap_earlier(top, best)) best = top;
  }
  cached_min_ = best;
  return best;
}

Time EventQueue::next_time() {
  assert(!empty());
  return record(find_min()).time;
}

std::uint32_t EventQueue::take_next() {
  if (live_ == 0) return kNil;
  const std::uint32_t slot = find_min();
  unlink(slot);
  // No rebuild check here: the population only grows through arm()/link(),
  // so geometry pressure is evaluated on the scheduling side.
  return slot;
}

void EventQueue::fire_periodic(std::uint32_t slot) {
  Record& r = record(slot);
  const std::uint32_t generation = r.generation;
  r.fn();
  // The callback may have cancelled the series (generation bumped) — the
  // record was kept alive for the callback's own frame; retire it now.
  Record& r2 = record(slot);
  if (r2.generation != generation) {
    r2.fn.reset();
    free_slot(slot);
    return;
  }
  ++r2.fires;
  // Absolute arithmetic: occurrence n fires at base + n*period, so rounding
  // error stays bounded instead of accumulating one addition per period.
  r2.time = r2.base + static_cast<double>(r2.fires) * r2.period;
  r2.seq = next_seq_++;
  link(slot);
  maybe_rebuild();
}

// --------------------------------------------------------------------------
// Geometry adaptation
// --------------------------------------------------------------------------

void EventQueue::maybe_rebuild() {
  // Re-derive the calendar geometry when the live population doubled (grow),
  // when most events sit in the spill heap because the bucket width does not
  // match the workload's time scale (spill), or when the population — peak
  // since the last rebuild, so churny loads that keep coming back never
  // thrash — collapsed (shrink).  Steady-state load never rebuilds.
  ++ops_since_rebuild_;
  const std::size_t n = live_;
  if (n > geometry_events_ * 2 && buckets_.size() < kMaxBuckets) {
    rebuild();
  } else if (!spill_futile_ && heap_.size() > n / 2 + 8 &&
             ops_since_rebuild_ >= 2 * n + kMinBuckets) {
    rebuild();
  } else if (buckets_.size() > kMinBuckets &&
             peak_live_ * 8 < geometry_events_ &&
             ops_since_rebuild_ >= 2 * geometry_events_) {
    rebuild();
  }
}

void EventQueue::rebuild() {
  // Collect every scheduled record.
  scratch_.clear();
  scratch_.reserve(live_);
  for (const std::uint32_t head : buckets_) {
    for (std::uint32_t s = head; s != kNil; s = record(s).next) {
      scratch_.push_back(s);
    }
  }
  for (const std::uint32_t s : heap_) scratch_.push_back(s);
  assert(scratch_.size() == live_);
  if (scratch_.empty()) {
    buckets_.assign(kMinBuckets, kNil);
    bucket_width_ = 1e-3;
    inv_bucket_width_ = 1.0 / bucket_width_;
    year_span_ = bucket_width_ * static_cast<double>(buckets_.size());
    year_start_ = 0.0;
    cursor_ = 0;
    bucketed_ = 0;
    heap_.clear();
    geometry_events_ = kMinBuckets;
    peak_live_ = 0;
    ops_since_rebuild_ = 0;
    spill_futile_ = false;
    cached_min_ = kNil;
    return;
  }

  // Pick the bucket width from the dense half of the schedule: the average
  // gap between the earliest event and the median event.  Far-future
  // outliers (session timeouts, program-end timers) spill to the heap and
  // do not distort the calendar.  With 2n buckets of one-mean-gap width the
  // year covers ~4x the dense span at ~1 event per bucket, so the min scan
  // inside a bucket stays short even after the population doubles again.
  Time t_min = record(scratch_.front()).time;
  for (const std::uint32_t s : scratch_) {
    t_min = std::min(t_min, record(s).time);
  }
  const std::size_t n = scratch_.size();
  std::vector<std::uint32_t>& times_by = scratch_;  // sorted in place below
  std::nth_element(times_by.begin(), times_by.begin() + static_cast<std::ptrdiff_t>(n / 2),
                   times_by.end(), [this](std::uint32_t a, std::uint32_t b) {
                     return record(a).time < record(b).time;
                   });
  const Time t_med = record(times_by[n / 2]).time;
  const double near_span = (t_med - t_min).value();
  const std::size_t near_count = std::max<std::size_t>(1, n / 2);
  double width = near_span / static_cast<double>(near_count);
  if (!(width > kMinBucketWidth)) width = kMinBucketWidth;

  std::size_t want = kMinBuckets;
  while (want < 2 * n && want < kMaxBuckets) want <<= 1;

  // assign() never shrinks capacity, so once the high-water mark is paid,
  // later rebuilds (including shrink-regrow cycles) allocate nothing.
  buckets_.assign(want, kNil);
  bucket_width_ = width;
  inv_bucket_width_ = 1.0 / width;
  year_span_ = bucket_width_ * static_cast<double>(buckets_.size());
  year_start_ = std::isfinite(t_min.value())
                    ? std::floor(t_min.value() / year_span_) * year_span_
                    : 0.0;
  cursor_ = std::isfinite(t_min.value()) ? bucket_index(t_min) : 0;
  bucketed_ = 0;
  heap_.clear();
  for (const std::uint32_t s : scratch_) place(s);
  geometry_events_ = std::max(n, kMinBuckets);
  peak_live_ = n;
  ops_since_rebuild_ = 0;
  // If most events still spill (a genuinely wide bimodal schedule), further
  // spill-triggered rebuilds would recompute the same geometry; disable the
  // trigger until the population changes enough to force a grow/shrink.
  spill_futile_ = heap_.size() > live_ / 2;
  cached_min_ = kNil;
}

// --------------------------------------------------------------------------
// Spill heap
// --------------------------------------------------------------------------

bool EventQueue::heap_earlier(std::uint32_t a, std::uint32_t b) const noexcept {
  const Record& ra = record(a);
  const Record& rb = record(b);
  if (ra.time != rb.time) return ra.time < rb.time;
  return ra.seq < rb.seq;
}

void EventQueue::heap_push(std::uint32_t slot) {
  Record& r = record(slot);
  r.where = Where::kHeap;
  r.pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(slot);
  heap_sift_up(heap_.size() - 1);
}

void EventQueue::heap_remove(std::size_t index) noexcept {
  assert(index < heap_.size());
  const std::size_t last = heap_.size() - 1;
  if (index != last) {
    heap_[index] = heap_[last];
    record(heap_[index]).pos = static_cast<std::uint32_t>(index);
  }
  heap_.pop_back();
  if (index < heap_.size()) {
    heap_sift_up(index);
    heap_sift_down(index);
  }
}

void EventQueue::heap_sift_up(std::size_t index) noexcept {
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!heap_earlier(heap_[index], heap_[parent])) break;
    std::swap(heap_[index], heap_[parent]);
    record(heap_[index]).pos = static_cast<std::uint32_t>(index);
    record(heap_[parent]).pos = static_cast<std::uint32_t>(parent);
    index = parent;
  }
}

void EventQueue::heap_sift_down(std::size_t index) noexcept {
  for (;;) {
    std::size_t smallest = index;
    const std::size_t left = 2 * index + 1;
    const std::size_t right = 2 * index + 2;
    if (left < heap_.size() && heap_earlier(heap_[left], heap_[smallest])) {
      smallest = left;
    }
    if (right < heap_.size() && heap_earlier(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == index) break;
    std::swap(heap_[index], heap_[smallest]);
    record(heap_[index]).pos = static_cast<std::uint32_t>(index);
    record(heap_[smallest]).pos = static_cast<std::uint32_t>(smallest);
    index = smallest;
  }
}

// --------------------------------------------------------------------------
// Structural validation
// --------------------------------------------------------------------------

std::string EventQueue::self_check() const {
  std::ostringstream err;
  auto fail = [&err](auto&&... parts) {
    ((err << parts), ...);
    return err.str();
  };

  if (slot_count_ != chunks_.size() * kChunkSize) {
    return fail("slot_count ", slot_count_, " != chunks*", kChunkSize);
  }

  // 0 = unseen, 1 = bucket, 2 = heap, 3 = free list.
  std::vector<std::uint8_t> seen(slot_count_, 0);
  auto claim = [&](std::uint32_t slot, std::uint8_t tag) -> bool {
    if (slot >= slot_count_ || seen[slot] != 0) return false;
    seen[slot] = tag;
    return true;
  };

  // Calendar tier: walk every bucket's doubly linked list.
  std::size_t bucket_members = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::uint32_t prev = kNil;
    for (std::uint32_t s = buckets_[b]; s != kNil;) {
      if (!claim(s, 1)) return fail("slot ", s, " linked twice (bucket ", b, ")");
      const Record& r = record(s);
      if (r.where != Where::kBucket) {
        return fail("slot ", s, " in bucket ", b, " but where!=kBucket");
      }
      if (r.pos != b) return fail("slot ", s, " pos ", r.pos, " != bucket ", b);
      if (r.prev != prev) return fail("slot ", s, " broken prev link");
      if (r.time.value() < year_start_ ||
          r.time.value() >= year_start_ + year_span_) {
        return fail("slot ", s, " time ", r.time, " outside calendar year [",
                    year_start_, ", ", year_start_ + year_span_, ")");
      }
      if (b < cursor_) return fail("bucketed slot ", s, " before cursor ", cursor_);
      if (r.seq >= next_seq_) return fail("slot ", s, " seq from the future");
      ++bucket_members;
      prev = s;
      s = r.next;
      if (bucket_members > live_) return fail("bucket list cycle");
    }
  }
  if (bucket_members != bucketed_) {
    return fail("bucketed_ ", bucketed_, " != walked ", bucket_members);
  }

  // Spill heap: positions and the heap property.
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const std::uint32_t s = heap_[i];
    if (!claim(s, 2)) return fail("slot ", s, " linked twice (heap)");
    const Record& r = record(s);
    if (r.where != Where::kHeap) return fail("slot ", s, " in heap but where!=kHeap");
    if (r.pos != i) return fail("heap slot ", s, " pos ", r.pos, " != index ", i);
    if (r.seq >= next_seq_) return fail("heap slot ", s, " seq from the future");
    if (i > 0 && heap_earlier(s, heap_[(i - 1) / 2])) {
      return fail("heap property violated at index ", i);
    }
  }

  if (live_ != bucketed_ + heap_.size()) {
    return fail("live_ ", live_, " != bucketed ", bucketed_, " + heap ",
                heap_.size());
  }

  // Free list: no cycles, consistent tags.
  std::size_t free_members = 0;
  for (std::uint32_t s = free_head_; s != kNil; s = record(s).next) {
    if (!claim(s, 3)) return fail("slot ", s, " linked twice (free list)");
    if (record(s).where != Where::kFree) {
      return fail("slot ", s, " on free list but where!=kFree");
    }
    ++free_members;
    if (free_members > slot_count_) return fail("free list cycle");
  }

  // Every slot is in exactly one place; the only unclaimed slots allowed
  // are records whose callback frame is live right now (a periodic event
  // mid-fire — e.g. the audit event this check runs from).
  for (std::uint32_t s = 0; s < slot_count_; ++s) {
    if (seen[s] == 0 && record(s).where != Where::kExecuting) {
      return fail("slot ", s, " unaccounted for (where=",
                  static_cast<int>(record(s).where), ")");
    }
  }

  // The memoized minimum must be a linked record.
  if (cached_min_ != kNil &&
      (cached_min_ >= slot_count_ || seen[cached_min_] == 0 ||
       seen[cached_min_] == 3)) {
    return fail("cached_min_ ", cached_min_, " is not a linked record");
  }
  return {};
}

// --------------------------------------------------------------------------
// Handles
// --------------------------------------------------------------------------

void EventQueue::cancel_id(std::uint64_t id) noexcept {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  Record& r = record(slot);
  if (r.generation != generation) return;  // already fired / cancelled
  if (r.where == Where::kExecuting) {
    // A periodic callback cancelling its own series: the executing frame
    // owns the record; just mark the series dead so it is not re-linked.
    ++r.generation;
    return;
  }
  unlink(slot);
  ++r.generation;
  r.fn.reset();
  free_slot(slot);
}

bool EventQueue::pending_id(std::uint64_t id) const noexcept {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  return record(slot).generation == generation;
}

}  // namespace coolstream::sim
