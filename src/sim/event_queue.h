// Allocation-free discrete-event queue.
//
// Events are callbacks ordered by (time, insertion sequence).  The secondary
// ordering makes execution order fully deterministic even when many events
// share a timestamp, which matters for reproducible simulations.
//
// Internals (see DESIGN.md, "Event engine internals"):
//   * Event records live in a chunked slab; records never move, and freed
//     slots are recycled through a free list, so the steady state performs
//     zero heap allocations per event.
//   * Callbacks are stored in-place when they fit a 48-byte small-buffer
//     (every periodic protocol-loop callback does); larger captures fall
//     back to one heap allocation owned by the record.
//   * Cancellation tokens are {slot, generation} pairs.  Firing, cancelling
//     or completing an event bumps the slot's generation, so stale handles
//     become inert automatically — no shared_ptr, no reference counting.
//   * Near-future events sit in a calendar (bucket) queue giving O(1)
//     schedule/pop for the periodic protocol loops; far-future events spill
//     into a binary heap and migrate into buckets as the clock advances.
//     Bucket geometry adapts to the live event population.
//   * cancel() eagerly unlinks the record (O(1) from a bucket, O(log n)
//     from the spill heap), so churn-heavy runs never accumulate dead
//     entries.
//   * Periodic events are first-class: one record is reused for the whole
//     series and the n-th occurrence fires at first + n*period computed
//     with absolute arithmetic (no floating-point drift accumulation).
//
// The queue is single-threaded, like the simulation it drives.  Handles
// must not outlive the queue that issued them.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/units.h"

namespace coolstream::sim {

/// Absolute simulation time.  A strong type (units::Tick): points in time
/// and spans (units::Duration) do not mix, and raw doubles do not convert
/// implicitly — see core/units.h.
using Time = units::Tick;

/// A span of simulated time, in seconds.
using Duration = units::Duration;

/// Convenience alias for type-erased callbacks at API boundaries that are
/// not performance sensitive.  The queue itself stores callables without
/// going through std::function.
using EventFn = std::function<void()>;

namespace detail {

/// Type-erased move-only callable with in-place storage for small targets.
/// Callables up to kInlineSize bytes (all protocol-loop lambdas) are stored
/// inside the record; larger ones cost one heap allocation.
class InlineFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  InlineFn() = default;
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  ~InlineFn() { reset(); }

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>,
                  "event callbacks must be invocable as void()");
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (storage()) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (storage()) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  void operator()() { ops_->invoke(storage()); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the target into `dst` and destroys the `src` copy.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* as(void* s) noexcept {
    return static_cast<D*>(s);
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*as<D>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*as<D>(src)));
        as<D>(src)->~D();
      },
      [](void* s) noexcept { as<D>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* s) { (**as<D*>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*as<D*>(src));
      },
      [](void* s) noexcept { delete *as<D*>(s); },
  };

  void* storage() noexcept { return static_cast<void*>(storage_); }

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) ops_->relocate(storage(), other.storage());
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace detail

class EventQueue;

/// Cancellation token for a scheduled event (or periodic series).
/// Copyable value type; all copies refer to the same underlying event via a
/// {slot, generation} pair, so a fired/cancelled event turns every copy
/// inert automatically.  A default-constructed handle is inert.  Handles
/// must not outlive the EventQueue that issued them.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event (or periodic series) if it has not completed yet.
  /// The record is unlinked eagerly; nothing lingers in the queue.
  /// Idempotent.
  void cancel() noexcept;

  /// True while the event is scheduled or (for periodic series) the series
  /// is still running.  False for default-constructed handles, after the
  /// event fired, and after cancel().
  bool pending() const noexcept;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint64_t id) noexcept
      : queue_(queue), id_(id) {}

  EventQueue* queue_ = nullptr;
  std::uint64_t id_ = 0;  ///< generation in the high 32 bits, slot in the low
};

/// Calendar/heap hybrid priority queue of events keyed by (time, sequence).
class EventQueue {
 public:
  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to fire once at absolute time `at`.  Returns a handle
  /// that can cancel the event.
  template <typename F>
  EventHandle schedule(Time at, F&& fn) {
    const std::uint32_t slot = alloc_slot();
    record(slot).fn.emplace(std::forward<F>(fn));
    return arm(slot, at, /*periodic=*/false, Duration::zero());
  }

  /// Schedules `fn` to fire at `first`, then every `period` seconds after
  /// (occurrence n fires at exactly first + n*period).  The series reuses a
  /// single slab record: no allocation per occurrence.  The callback runs
  /// before the next occurrence is linked, and cancelling from inside the
  /// callback stops the series.
  template <typename F>
  EventHandle schedule_every(Time first, Duration period, F&& fn) {
    assert(period > Duration::zero());
    const std::uint32_t slot = alloc_slot();
    record(slot).fn.emplace(std::forward<F>(fn));
    return arm(slot, first, /*periodic=*/true, period);
  }

  /// True when no live events remain.
  bool empty() const noexcept { return live_ == 0; }

  /// Number of live (scheduled, uncancelled) events.  Cancelled events are
  /// removed eagerly, so this is exact.
  std::size_t size() const noexcept { return live_; }

  /// Timestamp of the earliest live event.  Requires !empty().
  Time next_time();

  /// Removes the earliest event, calls `on_fire(time)` (callers use this to
  /// advance their clock), then runs the event callback.  Returns false if
  /// the queue was empty.  For periodic events the next occurrence is
  /// linked after the callback returns, consuming a fresh sequence number —
  /// the same ordering a self-rescheduling callback would produce.
  template <typename OnFire>
  bool run_next(OnFire&& on_fire) {
    const std::uint32_t slot = take_next();
    if (slot == kNil) return false;
    Record& r = record(slot);
    const Time fire_time = r.time;
    on_fire(fire_time);
    if (r.periodic) {
      fire_periodic(slot);
    } else {
      // Bump the generation first so handles report !pending() inside the
      // callback.  The callback runs in place in the slab record — records
      // never move and the slot is not on the free list, so re-entrant
      // schedule() calls cannot disturb it.
      ++r.generation;
      r.fn();
      r.fn.reset();
      free_slot(slot);
    }
    return true;
  }

  /// run_next() without a clock observer.
  bool run_next() {
    return run_next([](Time) {});
  }

  // --- instrumentation (tests / benches) ---------------------------------

  /// Buckets currently allocated in the calendar tier.
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  /// Live events currently in the spill heap (far future).
  std::size_t spill_size() const noexcept { return heap_.size(); }

  /// Exhaustive structural validation of the slab, calendar, spill heap and
  /// free list: every slot accounted for exactly once, link fields and
  /// cached counters consistent, heap ordered, cursor and bucket positions
  /// correct.  Returns an empty string when consistent, else a description
  /// of the first inconsistency.  O(slots); used by the invariant auditor
  /// and the tests, never by the hot path.
  std::string self_check() const;

 private:
  friend class EventHandle;
  friend struct EventQueueTestAccess;  ///< seeded-corruption tests only

  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kChunkShift = 9;  // 512 records per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMinBuckets = 64;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  // Calendar geometry is raw seconds: this file is a whitelisted value()
  // boundary — the bucket math is where time legitimately is a number.
  static constexpr double kMinBucketWidth = 1e-9;

  enum class Where : std::uint8_t {
    kFree,       ///< on the free list
    kBucket,     ///< linked into a calendar bucket
    kHeap,       ///< in the spill heap
    kExecuting,  ///< unlinked, callback running (periodic) or being freed
  };

  struct Record {
    Time time{};
    std::uint64_t seq = 0;
    std::uint32_t generation = 0;
    std::uint32_t prev = kNil;  ///< bucket list link (kBucket only)
    std::uint32_t next = kNil;  ///< bucket list link / free list link
    std::uint32_t pos = 0;      ///< bucket index (kBucket) or heap index (kHeap)
    Where where = Where::kFree;
    bool periodic = false;
    Duration period{};
    Time base{};                ///< time of the first occurrence
    std::uint64_t fires = 0;    ///< completed occurrences of the series
    detail::InlineFn fn;
  };

  Record& record(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  const Record& record(std::uint32_t slot) const noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  static std::uint64_t handle_id(std::uint32_t slot,
                                 std::uint32_t generation) noexcept {
    return (static_cast<std::uint64_t>(generation) << 32) | slot;
  }

  // Slab management.
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot) noexcept;
  void grow_slab();

  // Scheduling internals.
  EventHandle arm(std::uint32_t slot, Time at, bool periodic,
                  Duration period);
  void link(std::uint32_t slot);
  void place(std::uint32_t slot);
  void unlink(std::uint32_t slot) noexcept;
  std::uint32_t find_min();
  std::uint32_t take_next();
  void fire_periodic(std::uint32_t slot);
  void advance_year(Time t) noexcept;
  std::size_t bucket_index(Time t) const noexcept;
  void maybe_rebuild();
  void rebuild();

  // Spill heap (indices into the slab, ordered by (time, seq)).
  bool heap_earlier(std::uint32_t a, std::uint32_t b) const noexcept;
  void heap_push(std::uint32_t slot);
  void heap_remove(std::size_t index) noexcept;
  void heap_sift_up(std::size_t index) noexcept;
  void heap_sift_down(std::size_t index) noexcept;

  // Handle operations (via EventHandle).
  void cancel_id(std::uint64_t id) noexcept;
  bool pending_id(std::uint64_t id) const noexcept;

  std::vector<std::unique_ptr<Record[]>> chunks_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t slot_count_ = 0;

  std::vector<std::uint32_t> buckets_;  ///< head slot per bucket (kNil = empty)
  std::vector<std::uint32_t> heap_;
  std::vector<std::uint32_t> scratch_;  ///< reused by rebuild()

  double bucket_width_ = 1e-3;
  double inv_bucket_width_ = 1e3;  ///< 1 / bucket_width_ (avoids div on place)
  double year_span_ = 0.0;   ///< bucket_width_ * buckets_.size()
  double year_start_ = 0.0;  ///< calendar covers [year_start_, year_start_+span)
  std::size_t cursor_ = 0;  ///< no bucketed event lives before this bucket

  std::size_t live_ = 0;      ///< scheduled events (buckets + heap)
  std::size_t bucketed_ = 0;  ///< events in the calendar tier
  std::size_t geometry_events_ = 0;  ///< live count when geometry was chosen
  std::size_t peak_live_ = 0;  ///< max live count since the last rebuild
  std::size_t ops_since_rebuild_ = 0;  ///< rate-limits geometry changes
  bool spill_futile_ = false;  ///< last rebuild left most events spilled
  std::uint64_t next_seq_ = 0;
  std::uint32_t cached_min_ = kNil;  ///< memoized find_min() result
};

inline void EventHandle::cancel() noexcept {
  if (queue_ != nullptr) queue_->cancel_id(id_);
}

inline bool EventHandle::pending() const noexcept {
  return queue_ != nullptr && queue_->pending_id(id_);
}

}  // namespace coolstream::sim
