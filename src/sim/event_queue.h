// Priority queue of timestamped events for the discrete-event engine.
//
// Events are callbacks ordered by (time, insertion sequence).  The secondary
// ordering makes execution order fully deterministic even when many events
// share a timestamp, which matters for reproducible simulations.
// Events can be cancelled in O(1) through an EventHandle; cancelled entries
// are dropped lazily when they reach the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace coolstream::sim {

/// Simulation time in seconds.
using Time = double;

/// Callback invoked when an event fires.
using EventFn = std::function<void()>;

/// Cancellation token for a scheduled event.  Copyable; all copies refer to
/// the same underlying event.  A default-constructed handle is inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Idempotent.
  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }

  /// True if the event is still pending (scheduled, not cancelled, not yet
  /// fired).  False for default-constructed handles.
  bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class EventQueue;
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Min-heap of events keyed by (time, sequence number).
class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `at`.  Returns a handle that
  /// can cancel the event.
  EventHandle schedule(Time at, EventFn fn);

  /// True when no live events remain.  May compact cancelled events.
  bool empty();

  /// Timestamp of the earliest live event.  Requires !empty().
  Time next_time();

  /// Removes and returns the earliest live event.  Requires !empty().
  /// The returned pair is (time, callback).
  std::pair<Time, EventFn> pop();

  /// Number of entries currently in the heap, including not-yet-compacted
  /// cancelled events.  Intended for tests and instrumentation.
  std::size_t raw_size() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> alive;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops cancelled entries off the top of the heap.
  void skim();

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace coolstream::sim
