#include "sim/thread_pool.h"

#include <algorithm>
#include <utility>

namespace coolstream::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    sync::MutexLock lock(mu_);
    jobs_.push(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::exception_ptr err;
  {
    sync::MutexLock lock(mu_);
    while (!jobs_.empty() || in_flight_ != 0) idle_cv_.wait(mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      sync::MutexLock lock(mu_);
      while (!stopping_ && jobs_.empty()) work_cv_.wait(mu_);
      if (jobs_.empty()) return;  // stopping_ and drained
      job = std::move(jobs_.front());
      jobs_.pop();
      ++in_flight_;
    }
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      // An escaped exception must not std::terminate the worker; capture it
      // and let wait() rethrow the first one on the calling thread.
      err = std::current_exception();
    }
    {
      sync::MutexLock lock(mu_);
      --in_flight_;
      if (err && !first_error_) first_error_ = err;
    }
    idle_cv_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

}  // namespace coolstream::sim
