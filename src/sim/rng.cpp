#include "sim/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace coolstream::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
  // xoshiro256++ requires a non-zero state; splitmix64 cannot produce four
  // zero words from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless unbiased method.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // -log(1-u) with u in [0,1) avoids log(0).
  return -mean * std::log1p(-uniform());
}

double Rng::pareto(double x_m, double alpha) noexcept {
  assert(x_m > 0.0 && alpha > 0.0);
  return x_m / std::pow(1.0 - uniform(), 1.0 / alpha);
}

double Rng::bounded_pareto(double lo, double hi, double alpha) noexcept {
  assert(0.0 < lo && lo < hi && alpha > 0.0);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on (0,1] uniforms.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::weibull(double lambda, double k) noexcept {
  assert(lambda > 0.0 && k > 0.0);
  return lambda * std::pow(-std::log1p(-uniform()), 1.0 / k);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  assert(n >= 1);
  if (n == 1) return 1;
  // Rejection-inversion sampling (Hörmann & Derflinger 1996).  Handles the
  // s == 1 singularity explicitly.
  const double nd = static_cast<double>(n);
  const auto h = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  const auto h_inv = [s](double y) {
    if (s == 1.0) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double h_x1 = h(1.5) - 1.0;
  const double h_n = h(nd + 0.5);
  for (;;) {
    const double u = h_x1 + uniform() * (h_n - h_x1);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    const double kd = static_cast<double>(k);
    if (k < 1 || k > n) continue;
    // Acceptance test: u >= h(k + 0.5) - k^-s accepts k.
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) return k;
  }
}

std::size_t Rng::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating point slack
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> chosen;
  sample_indices_into(n, k, chosen);
  return chosen;
}

void Rng::sample_indices_into(std::size_t n, std::size_t k,
                              std::vector<std::size_t>& out) {
  assert(k <= n);
  // Floyd's algorithm produces k distinct values; shuffle for random order.
  out.clear();
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(below(j + 1));
    bool seen = false;
    for (std::size_t c : out) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  shuffle(out);
}

Rng Rng::fork() noexcept {
  return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL);
}

Rng Rng::stream(std::uint64_t tag) const noexcept {
  // Two rounds of splitmix64 fully decorrelate the (seed, tag) pair before
  // it seeds the child; a bare XOR would leave nearby tags one bit apart.
  std::uint64_t state = seed_;
  std::uint64_t mixed = splitmix64_next(state);
  state = mixed ^ tag;
  mixed = splitmix64_next(state);
  return Rng(mixed);
}

}  // namespace coolstream::sim
