// Minimal work-stealing-free thread pool for parameter sweeps.
//
// Benches sweep seeds / system sizes / join rates; each sweep point is an
// independent simulation with its own forked RNG stream, so results are
// identical whether the sweep runs serially or in parallel.  The pool is the
// only place in the library that creates threads; simulations themselves are
// single-threaded and share nothing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace coolstream::sim {

/// Fixed-size thread pool executing void() jobs FIFO.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Must not be called after wait() has returned and the
  /// pool is being destroyed concurrently.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.  If any job threw, the
  /// first exception (in completion order) is rethrown here; the remaining
  /// jobs still run to completion first.  Subsequent waits start clean.
  void wait();

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> jobs_;
  std::exception_ptr first_error_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every i in [0, n), distributing across `pool`.
/// Blocks until all iterations complete.  `fn` must be safe to call
/// concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace coolstream::sim
