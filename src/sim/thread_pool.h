// Minimal work-stealing-free thread pool for parameter sweeps.
//
// Benches sweep seeds / system sizes / join rates; each sweep point is an
// independent simulation with its own forked RNG stream, so results are
// identical whether the sweep runs serially or in parallel.  The pool is the
// only place in the library that creates threads; simulations themselves are
// single-threaded and share nothing.
//
// All cross-thread state is guarded by mu_ and annotated for Clang's
// -Wthread-safety analysis (core/thread_annotations.h; enabled by the
// COOLSTREAM_THREAD_SAFETY build option): an unlocked access to the queue,
// the in-flight count or the captured exception no longer compiles.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace coolstream::sim {

/// Fixed-size thread pool executing void() jobs FIFO.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Safe to call from any thread (churn drivers and
  /// nested sweeps submit concurrently).  Must not be called after wait()
  /// has returned and the pool is being destroyed concurrently.
  void submit(std::function<void()> job) EXCLUDES(mu_);

  /// Blocks until every submitted job has finished.  If any job threw, the
  /// first exception (in completion order) is rethrown here; the remaining
  /// jobs still run to completion first.  Subsequent waits start clean.
  void wait() EXCLUDES(mu_);

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop() EXCLUDES(mu_);

  /// Guards every member below it; workers_ is written only while
  /// single-threaded (constructor spawn / destructor join).
  sync::Mutex mu_;  // census: sweep-pool job queue; simulations stay single-threaded per shard
  sync::CondVar work_cv_;
  sync::CondVar idle_cv_;
  std::queue<std::function<void()>> jobs_ GUARDED_BY(mu_);
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every i in [0, n), distributing across `pool`.
/// Blocks until all iterations complete.  `fn` must be safe to call
/// concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace coolstream::sim
