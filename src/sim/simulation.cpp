#include "sim/simulation.h"

namespace coolstream::sim {

bool Simulation::step(Time until) {
  if (queue_.empty()) return false;
  if (queue_.next_time() > until) return false;
  ++executed_;
  queue_.run_next([this](Time when) {
    assert(when >= now_);
    now_ = when;
  });
  return true;
}

void Simulation::run_until(Time until) {
  while (step(until)) {
  }
  if (until != Time::max() && now_ < until) {
    now_ = until;
  }
}

}  // namespace coolstream::sim
