#include "sim/simulation.h"

#include <cassert>
#include <memory>
#include <utility>

namespace coolstream::sim {

EventHandle Simulation::at(Time when, EventFn fn) {
  assert(when >= now_);
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulation::after(Time delay, EventFn fn) {
  assert(delay >= 0.0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventHandle Simulation::every(Time first_delay, Time period, EventFn fn) {
  assert(first_delay >= 0.0 && period > 0.0);
  // The chain flag outlives any single occurrence; cancelling the returned
  // handle flips it and stops the series at the next firing.
  auto chain_alive = std::make_shared<bool>(true);
  // `tick` owns the callback and re-schedules itself.  It is stored in a
  // shared_ptr so the lambda can capture a stable reference to itself.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, chain_alive, tick, period, fn = std::move(fn)]() {
    if (!*chain_alive) return;
    fn();
    if (!*chain_alive) return;  // callback may have cancelled the chain
    queue_.schedule(now_ + period, *tick);
  };
  queue_.schedule(now_ + first_delay, *tick);
  return EventHandle(std::move(chain_alive));
}

bool Simulation::step(Time until) {
  if (queue_.empty()) return false;
  const Time t = queue_.next_time();
  if (t > until) return false;
  auto [when, fn] = queue_.pop();
  assert(when >= now_);
  now_ = when;
  ++executed_;
  fn();
  return true;
}

void Simulation::run_until(Time until) {
  while (step(until)) {
  }
  if (until != std::numeric_limits<Time>::infinity() && now_ < until) {
    now_ = until;
  }
}

}  // namespace coolstream::sim
