// Deterministic cross-shard mailbox.
//
// The sharded tick runs each shard's peers on a worker thread; anything a
// peer wants to say to a peer on another shard is deposited here instead of
// delivered directly.  After the barrier the main thread drains the mailbox
// and applies every message serially, in the *canonical sender order*:
//
//   messages sort by (sender position in the tick order, emission order
//   within that sender)
//
// which is a pure function of the tick's frozen peer order — independent of
// the shard count and of how the OS interleaves the workers.  This is the
// property the tests/property shard-mailbox suite checks under hundreds of
// randomized interleavings.
//
// Concurrency contract (why there is no lock here): each shard writes only
// its own lane, exactly one worker runs per shard, and drain() happens
// strictly after the barrier that joins the workers — so no two threads
// ever touch the same lane concurrently.  The barrier's mutex/cond-var pair
// (sim::ThreadPool::wait) provides the happens-before edge that publishes
// the lanes to the drainer.
//
// Per-lane ordering contract: a worker visits its peers in ascending tick
// position, so each lane is pushed in non-decreasing `pos` order.  drain()
// exploits this with a cursor walk — O(positions + messages), no sort.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace coolstream::sim {

/// Per-shard lanes of (sender position, payload), drained in canonical
/// sender order.  T is the message payload (a variant in the System).
template <typename T>
class ShardMailbox {
 public:
  struct Entry {
    std::uint32_t pos = 0;  ///< sender's position in the tick order
    T payload;
  };
  using Lane = std::vector<Entry>;

  /// Prepares `shards` empty lanes, keeping their capacity across ticks.
  void reset(std::size_t shards) {
    if (lanes_.size() != shards) lanes_.resize(shards);
    for (Lane& lane : lanes_) lane.clear();
  }

  std::size_t shard_count() const noexcept { return lanes_.size(); }

  /// Appends a message to `shard`'s lane.  Callers must push each lane in
  /// non-decreasing `pos` order (workers walk their peers in tick order);
  /// only the worker owning `shard` may call this between barriers.
  void push(std::size_t shard, std::uint32_t pos, T payload) {
    assert(shard < lanes_.size());
    Lane& lane = lanes_[shard];
    assert(lane.empty() || lane.back().pos <= pos);
    lane.push_back(Entry{pos, std::move(payload)});
  }

  /// Total queued messages across all lanes.
  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const Lane& lane : lanes_) n += lane.size();
    return n;
  }

  /// Applies every message in canonical sender order and clears the lanes.
  /// `shard_of(pos)` maps a tick position to the shard that owned the
  /// sender; `apply(pos, payload&&)` consumes one message.  Runs on one
  /// thread, after the barrier.
  template <typename ShardOf, typename Apply>
  void drain(std::size_t positions, ShardOf&& shard_of, Apply&& apply) {
    cursors_.assign(lanes_.size(), 0);
    for (std::uint32_t pos = 0; pos < positions; ++pos) {
      const std::size_t shard = shard_of(pos);
      assert(shard < lanes_.size());
      Lane& lane = lanes_[shard];
      std::size_t& cur = cursors_[shard];
      while (cur < lane.size() && lane[cur].pos == pos) {
        apply(pos, std::move(lane[cur].payload));
        ++cur;
      }
    }
#ifndef NDEBUG
    for (std::size_t s = 0; s < lanes_.size(); ++s) {
      assert(cursors_[s] == lanes_[s].size() && "unclaimed mailbox entries");
    }
#endif
    for (Lane& lane : lanes_) lane.clear();
  }

 private:
  std::vector<Lane> lanes_;
  std::vector<std::size_t> cursors_;  ///< drain scratch, reused across ticks
};

}  // namespace coolstream::sim
