// Time-series recording utilities used by the measurement pipeline.
//
// TimeSeries stores (time, value) samples; BucketSeries aggregates samples
// into fixed-width time buckets (mean/min/max/count), which is how the
// paper's figures (users-vs-time, continuity-vs-time) are produced.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_queue.h"  // for Time

namespace coolstream::sim {

/// A single (time, value) observation.
struct Sample {
  Time time{};
  double value = 0.0;
};

/// Append-only series of timestamped samples.
class TimeSeries {
 public:
  /// Records one observation.  Times should be non-decreasing (asserted in
  /// debug builds); the figure pipelines rely on temporal order.
  void record(Time t, double value);

  const std::vector<Sample>& samples() const noexcept { return samples_; }
  bool empty() const noexcept { return samples_.empty(); }
  std::size_t size() const noexcept { return samples_.size(); }

  /// Value of the last sample at or before `t`, if any.
  std::optional<double> value_at(Time t) const;

  /// Minimum / maximum recorded values.  Require !empty().
  double min_value() const;
  double max_value() const;

 private:
  std::vector<Sample> samples_;
};

/// One aggregated bucket of a BucketSeries.
struct Bucket {
  Time start{};                  ///< inclusive bucket start time
  std::size_t count = 0;         ///< samples that fell in the bucket
  double sum = 0.0;              ///< sum of sample values
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  double mean() const noexcept { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Aggregates samples into fixed-width time buckets starting at `origin`.
class BucketSeries {
 public:
  /// `width` is the bucket width (must be > 0).
  explicit BucketSeries(Duration width, Time origin = Time::zero());

  /// Adds an observation.  Samples before `origin` are clamped into the
  /// first bucket.
  void record(Time t, double value);

  /// All buckets from origin to the latest sample.  Buckets that received
  /// no samples are present with count == 0.
  const std::vector<Bucket>& buckets() const noexcept { return buckets_; }

  Duration width() const noexcept { return width_; }
  Time origin() const noexcept { return origin_; }

 private:
  Duration width_;
  Time origin_;
  std::vector<Bucket> buckets_;
};

/// Tracks a piecewise-constant counter (e.g. "number of concurrent users")
/// and can integrate it or sample it onto a fixed grid for plotting.
class StepCounter {
 public:
  /// Applies a delta (+1 join, -1 leave) at time `t` (non-decreasing).
  void add(Time t, int delta);

  /// Current counter value.
  long long value() const noexcept { return value_; }

  /// The full step function as (time, value-after-step) samples.
  const std::vector<std::pair<Time, long long>>& steps() const noexcept {
    return steps_;
  }

  /// Samples the step function every `dt` over [t0, t1].
  std::vector<Sample> sample_grid(Time t0, Time t1, Duration dt) const;

  /// Time-average of the counter over [t0, t1].
  double time_average(Time t0, Time t1) const;

  /// Maximum value attained at or before `t1`.
  long long peak(Time t1 = Time::max()) const;

 private:
  long long value_ = 0;
  std::vector<std::pair<Time, long long>> steps_;
};

}  // namespace coolstream::sim
