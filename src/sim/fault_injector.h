// Seeded, schedule-driven fault injection for the simulator.
//
// The paper's central figures describe Coolstreaming *under stress* —
// flash-crowd joins, abrupt departures, overloaded parents triggering the
// Ineq. 1/2 adaptation — yet a clean arrival/departure trace exercises
// none of the repair paths.  This layer injects the network-plane half of
// that stress (the workload half — churn bursts and mass departures —
// lives in workload::ChurnDriver):
//
//   * message faults  : loss, duplication and bounded delay jitter at the
//                       net::Transport boundary (jitter of independent
//                       messages is what produces reordering);
//   * capacity faults : a node's upload capacity multiplied by a factor
//                       during a window (overloaded / throttled parents);
//   * flap faults     : a node refuses *new* inbound connections during a
//                       window (NAT mapping lost, gateway rebooted).
//
// Everything is expressed as typed FaultSchedule entries over units::Tick
// windows, serializable to a line-oriented text format so a failing
// schedule found by the property harness is replayable from a file.
//
// Determinism contract: the injector owns its own Rng — it never draws
// from the simulation's root generator — so attaching an injector with an
// empty schedule (or none at all) leaves every existing seeded run
// bit-identical.  Fault injection is off by default everywhere: a null
// injector pointer costs one branch on the transport path.
//
// This header is sim-layer: it depends only on core/units.h and sim::Rng,
// so net and core may consult it without violating the module layering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/units.h"
#include "sim/rng.h"

namespace coolstream::sim {

/// Node reference in a fault schedule.  Matches net::NodeId's
/// representation (sim cannot include net); kFaultAnyNode is the wildcard.
using FaultNode = std::uint32_t;
inline constexpr FaultNode kFaultAnyNode = 0xffffffffu;

/// Half-open activity window [start, end) on the simulation clock.
struct FaultWindow {
  units::Tick start{};
  units::Tick end{};

  bool contains(units::Tick t) const noexcept {
    return t >= start && t < end;
  }
  friend bool operator==(const FaultWindow&, const FaultWindow&) = default;
};

/// Control-plane message fault: each message whose endpoints match `node`
/// (or any message, for the wildcard) while the window is active is
/// independently dropped with `drop`, duplicated with `dup`, and delayed
/// by Uniform(0, max_jitter) with `jitter`.
struct MessageFault {
  FaultWindow window;
  FaultNode node = kFaultAnyNode;  ///< matches sender or receiver
  double drop = 0.0;
  double dup = 0.0;
  double jitter = 0.0;
  units::Duration max_jitter = units::Duration(0.5);

  friend bool operator==(const MessageFault&, const MessageFault&) = default;
};

/// Upload-capacity degradation: the node's uplink is multiplied by
/// `factor` (0 = dead uplink, 1 = no-op) while the window is active.
/// Overlapping faults multiply.
struct CapacityFault {
  FaultWindow window;
  FaultNode node = kFaultAnyNode;  ///< wildcard = every node
  double factor = 1.0;

  friend bool operator==(const CapacityFault&, const CapacityFault&) = default;
};

/// Connectivity flap: the node refuses new inbound connections while the
/// window is active (existing partnerships keep flowing, as with a real
/// NAT whose established mappings outlive the listener).
struct FlapFault {
  FaultWindow window;
  FaultNode node = kFaultAnyNode;

  friend bool operator==(const FlapFault&, const FlapFault&) = default;
};

/// A complete, replayable network-plane fault scenario.
struct FaultSchedule {
  std::vector<MessageFault> messages;
  std::vector<CapacityFault> capacities;
  std::vector<FlapFault> flaps;

  bool empty() const noexcept {
    return messages.empty() && capacities.empty() && flaps.empty();
  }
  std::size_t size() const noexcept {
    return messages.size() + capacities.size() + flaps.size();
  }

  /// Line-oriented text form:
  ///   msg <start> <end> <node|*> <drop> <dup> <jitter> <max_jitter>
  ///   cap <start> <end> <node|*> <factor>
  ///   flap <start> <end> <node>
  /// Blank lines and lines starting with '#' are ignored.
  std::string to_text() const;

  /// Parses to_text() output (unknown verbs are an error so that churn
  /// schedules can safely embed fault lines).  Returns nullopt on
  /// malformed input.
  static std::optional<FaultSchedule> parse(const std::string& text);

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;
};

/// What the transport should do with one message.
struct MessageDecision {
  bool drop = false;
  bool duplicate = false;
  units::Duration extra_delay{};      ///< jitter added to the real copy
  units::Duration duplicate_delay{};  ///< jitter added to the duplicate
};

/// Fault counters, for tests and bench reporting.
struct FaultCounters {
  std::uint64_t messages_seen = 0;  ///< messages sent while any fault active
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t jittered = 0;
};

/// Replays a FaultSchedule against a run.  Decision helpers are
/// deterministic functions of (seed, schedule, call sequence); the pure
/// state queries (capacity_factor, inbound_blocked) never draw.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed, FaultSchedule schedule = {});

  /// Consulted by net::Transport for every control message.  Draws from
  /// the injector's private Rng only while a matching window is active.
  MessageDecision on_message(units::Tick now, FaultNode from, FaultNode to);

  /// Product of the factors of every capacity fault covering `node` at
  /// `now` (clamped to >= 0); 1.0 when none.  Pure.
  double capacity_factor(units::Tick now, FaultNode node) const noexcept;

  /// True when a flap fault currently blocks new inbound connections to
  /// `node`.  Pure.
  bool inbound_blocked(units::Tick now, FaultNode node) const noexcept;

  /// True when any entry's window is active at `now` (used by harnesses
  /// to know when a run has quiesced).
  bool any_active(units::Tick now) const noexcept;
  /// End of the latest window in the schedule (Tick::zero() when empty).
  units::Tick last_window_end() const noexcept;

  const FaultSchedule& schedule() const noexcept { return schedule_; }
  const FaultCounters& counters() const noexcept { return counters_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  FaultSchedule schedule_;
  Rng rng_;
  std::uint64_t seed_;
  FaultCounters counters_;
};

}  // namespace coolstream::sim
